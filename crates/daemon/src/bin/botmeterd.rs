//! `botmeterd` — the incremental charting daemon over a JSON-Lines feed.
//!
//! Reads an unbounded stream of observed lookups from stdin (the same
//! JSON-Lines format `simulate` emits and `estimate` consumes), ingests it
//! in shards, and prints one JSON summary line per published snapshot:
//! version, changed-cell counts against the previous snapshot, residency
//! and stream-quality counters. At end of input it publishes the trailing
//! partial epoch and prints the final landscape to stderr.
//!
//! ```sh
//! simulate --family newgoz --population 64 --epochs 7 | \
//!     botmeterd --family newgoz --epochs 7
//! ```
//!
//! With `--data-dir DIR` the daemon runs **crash-safe**: every shard is
//! written to a checksummed write-ahead journal before ingest, the engine
//! state is checkpointed atomically every `--checkpoint-every` shards, and
//! on startup the daemon recovers from the newest readable checkpoint plus
//! journal replay. Records already ingested before a crash are skipped on
//! the refed stream, so a `kill -9` + restart publishes snapshots
//! bit-identical to an uninterrupted run. SIGTERM/SIGINT trigger a final
//! checkpoint flush and a clean exit.
//!
//! Usage: `botmeterd --family NAME [--epochs E] [--model MODEL]
//! [--threads N] [--close-lag L] [--retention R] [--shard-records S]
//! [--delivery-rate F] [--data-dir DIR] [--checkpoint-every N]
//! [--final-snapshot PATH]`.

use botmeter_core::{BotMeter, BotMeterConfig, LandscapeVersion, ModelKind};
use botmeter_daemon::{
    BotMeterDaemon, DaemonOptions, DiskStorage, DurabilityOptions, DurableDaemon, Storage,
};
use botmeter_dga::DgaFamily;
use botmeter_dns::{trace, ObservedLookup};
use botmeter_exec::ExecPolicy;
use std::io;
use std::sync::atomic::{AtomicBool, Ordering};

/// Set by the signal handler; checked between shards.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

extern "C" fn request_shutdown(_signum: i32) {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Installs `request_shutdown` for SIGTERM and SIGINT via the C runtime's
/// `signal(2)` — the workspace vendors no libc bindings, and these two
/// constants are identical on every platform the daemon targets.
fn install_signal_handlers() {
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    unsafe {
        signal(SIGTERM, request_shutdown as *const () as usize);
        signal(SIGINT, request_shutdown as *const () as usize);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut family: Option<DgaFamily> = None;
    let mut model = ModelKind::Auto;
    let mut epochs = 1u64;
    let mut threads = 0usize;
    let mut close_lag = 1u64;
    let mut retention = 8usize;
    let mut shard_records = 4096usize;
    let mut delivery_rate = 1.0f64;
    let mut data_dir: Option<String> = None;
    let mut checkpoint_every = 16u64;
    let mut final_snapshot: Option<String> = None;

    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        i += 1;
        let value = args.get(i).cloned();
        match flag {
            "--family" => {
                let name = value.unwrap_or_else(|| usage("--family needs a name"));
                family = Some(
                    DgaFamily::by_name(&name)
                        .unwrap_or_else(|| usage(&format!("unknown family {name:?}"))),
                );
            }
            "--model" => {
                let name = value.unwrap_or_else(|| usage("--model needs a name"));
                model = match name.to_ascii_lowercase().as_str() {
                    "auto" => ModelKind::Auto,
                    "timing" => ModelKind::Timing,
                    "poisson" => ModelKind::Poisson,
                    "bernoulli" => ModelKind::Bernoulli,
                    "coverage" => ModelKind::Coverage,
                    "sampling" => ModelKind::Sampling,
                    "windowoccupancy" => ModelKind::WindowOccupancy,
                    "hybrid" => ModelKind::Hybrid,
                    other => usage(&format!("unknown model {other:?}")),
                };
            }
            "--epochs" => epochs = parse(value, "--epochs"),
            "--threads" => threads = parse(value, "--threads"),
            "--close-lag" => close_lag = parse(value, "--close-lag"),
            "--retention" => retention = parse(value, "--retention"),
            "--shard-records" => shard_records = parse(value, "--shard-records"),
            "--delivery-rate" => delivery_rate = parse(value, "--delivery-rate"),
            "--data-dir" => {
                data_dir = Some(value.unwrap_or_else(|| usage("--data-dir needs a path")));
            }
            "--checkpoint-every" => checkpoint_every = parse(value, "--checkpoint-every"),
            "--final-snapshot" => {
                final_snapshot =
                    Some(value.unwrap_or_else(|| usage("--final-snapshot needs a path")));
            }
            other => usage(&format!("unknown flag {other}")),
        }
        i += 1;
    }
    let family = family.unwrap_or_else(|| usage("--family is required"));
    let policy = if threads == 0 {
        ExecPolicy::default()
    } else {
        ExecPolicy::with_threads(threads)
    };

    let meter = BotMeter::new(
        BotMeterConfig::new(family)
            .model(model)
            .delivery_rate(delivery_rate),
    );
    let shard_records = shard_records.max(1);
    // In durable mode the engine's own auto-publish drives reporting, so
    // the publish schedule is a pure function of engine state and replays
    // identically after a crash. The ephemeral path keeps the historical
    // explicit per-shard trigger (identical schedule, binary-local state).
    let options = DaemonOptions::new(0..epochs)
        .policy(policy)
        .close_lag(close_lag)
        .retention(retention.max(2)) // keep a previous snapshot to diff against
        .auto_publish(data_dir.is_some());

    match data_dir {
        Some(dir) => run_durable(
            meter,
            options,
            &dir,
            checkpoint_every,
            shard_records,
            final_snapshot.as_deref(),
        ),
        None => run_ephemeral(meter, options, shard_records, final_snapshot.as_deref()),
    }
}

/// The historical in-memory mode: no journal, no checkpoints.
fn run_ephemeral(
    meter: BotMeter,
    options: DaemonOptions,
    shard_records: usize,
    final_snapshot: Option<&str>,
) {
    let mut daemon = BotMeterDaemon::new(meter, options).unwrap_or_else(|e| usage(&e.to_string()));
    let stdin = io::stdin();
    let mut shard: Vec<ObservedLookup> = Vec::with_capacity(shard_records);
    let mut last_epoch_published: Option<u64> = None;
    for record in trace::read_jsonl_iter::<ObservedLookup, _>(stdin.lock()) {
        let lookup = record.unwrap_or_else(|e| usage(&e.to_string()));
        shard.push(lookup);
        if shard.len() >= shard_records {
            drain_shard(&mut daemon, &mut shard, &mut last_epoch_published);
        }
    }
    drain_shard(&mut daemon, &mut shard, &mut last_epoch_published);
    // Publish the trailing partial epoch.
    let version = daemon.publish_now();
    report(&daemon, version);
    finish(&daemon, final_snapshot);
}

/// Crash-safe mode: journal + checkpoints in `data_dir`, recovery on
/// startup, resume-skip over the refed stream, graceful signal shutdown.
fn run_durable(
    meter: BotMeter,
    options: DaemonOptions,
    data_dir: &str,
    checkpoint_every: u64,
    shard_records: usize,
    final_snapshot: Option<&str>,
) {
    install_signal_handlers();
    let storage = DiskStorage::open(data_dir)
        .unwrap_or_else(|e| usage(&format!("cannot open --data-dir {data_dir:?}: {e}")));
    let (mut daemon, recovery) = DurableDaemon::open(
        meter,
        options,
        storage,
        DurabilityOptions::new(checkpoint_every),
    )
    .unwrap_or_else(|e| {
        eprintln!("[botmeterd] recovery failed: {e}");
        std::process::exit(1);
    });
    if recovery.checkpoint_seq > 0 || recovery.replayed_frames > 0 {
        eprintln!(
            "[botmeterd] recovered: checkpoint seq {} (+{} corrupt skipped), \
             replayed {} journal frames / {} records, {} torn bytes discarded, \
             resuming after record {}",
            recovery.checkpoint_seq,
            recovery.corrupt_checkpoints,
            recovery.replayed_frames,
            recovery.replayed_records,
            recovery.torn_tail_bytes,
            recovery.ingested_records,
        );
    }

    // The feed restarts from the beginning of the trace; skip what the
    // recovered engine already ingested, and size the first fresh shard to
    // land the next boundary back on a multiple of `shard_records`, so the
    // publish/checkpoint schedule is identical to an uninterrupted run.
    let skip = recovery.ingested_records;
    let misalignment = (skip % shard_records as u64) as usize;
    let mut next_shard_len = if misalignment == 0 {
        shard_records
    } else {
        shard_records - misalignment
    };

    let stdin = io::stdin();
    let mut seen = 0u64;
    let mut shard: Vec<ObservedLookup> = Vec::with_capacity(shard_records);
    let mut interrupted = false;
    for record in trace::read_jsonl_iter::<ObservedLookup, _>(stdin.lock()) {
        let lookup = record.unwrap_or_else(|e| usage(&e.to_string()));
        seen += 1;
        if seen <= skip {
            continue;
        }
        shard.push(lookup);
        if shard.len() >= next_shard_len {
            if let Some(version) = daemon.ingest(&shard) {
                report(daemon.engine(), version);
            }
            shard.clear();
            next_shard_len = shard_records;
        }
        if SHUTDOWN.load(Ordering::SeqCst) {
            interrupted = true;
            break;
        }
    }
    // A signal that arrived while the reader was blocked is only noticed
    // once the read returns — re-check after the loop so "SIGTERM, then
    // the feed closes" takes the graceful path, not the end-of-input one.
    interrupted = interrupted || SHUTDOWN.load(Ordering::SeqCst);

    if interrupted {
        // Graceful shutdown: the buffered partial shard was never
        // journaled, so it is simply dropped — the restart re-reads those
        // records from the feed. Flush a final checkpoint and exit clean.
        match daemon.shutdown() {
            Ok(()) => eprintln!(
                "[botmeterd] signal received: checkpointed at journal seq {}, exiting",
                daemon.journal_seq()
            ),
            Err(e) => {
                eprintln!("[botmeterd] signal received but final checkpoint failed: {e}");
                std::process::exit(1);
            }
        }
        std::process::exit(0);
    }

    if !shard.is_empty() {
        if let Some(version) = daemon.ingest(&shard) {
            report(daemon.engine(), version);
        }
        shard.clear();
    }
    // Publish the trailing partial epoch — but only when the engine has
    // unpublished work. A restart that recovered a fully-caught-up state
    // must not mint a new version for content it already published, or
    // the version sequence would drift from an uninterrupted run's.
    if daemon.engine().dirty_cells() > 0 || daemon.engine().store().is_empty() {
        let version = daemon.publish_now();
        report(daemon.engine(), version);
    }
    if let Err(e) = daemon.shutdown() {
        eprintln!("[botmeterd] final checkpoint failed: {e}");
    }
    if daemon.is_degraded() {
        eprintln!(
            "[botmeterd] WARNING: journal degraded; {} shards rode on checkpoints alone",
            daemon.durability_stats().unjournaled_shards
        );
    }
    finish(daemon.engine(), final_snapshot);
}

/// Prints the final landscape and counters; optionally writes the
/// snapshot to `final_snapshot` (atomically, via the storage layer) for
/// byte-for-byte comparison by the chaos harness.
fn finish(daemon: &BotMeterDaemon, final_snapshot: Option<&str>) {
    if let Some((version, landscape)) = daemon.latest() {
        eprintln!("[botmeterd] final snapshot {version}:");
        eprint!("{landscape}");
        if let Some(path) = final_snapshot {
            let target = std::path::Path::new(path);
            let dir = target.parent().filter(|p| !p.as_os_str().is_empty());
            let name = target
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or_else(|| usage("--final-snapshot needs a file path"));
            let body = format!("{version}\n{landscape}");
            let write = DiskStorage::open(dir.unwrap_or(std::path::Path::new(".")))
                .and_then(|mut s| s.write_atomic(name, body.as_bytes()));
            if let Err(e) = write {
                eprintln!("[botmeterd] could not write final snapshot {path:?}: {e}");
                std::process::exit(1);
            }
        }
    }
    let stats = daemon.stats();
    eprintln!(
        "[botmeterd] ingested {} matched {} stale {} peak-resident {} publishes {}",
        stats.ingested,
        stats.matched,
        stats.stale_records,
        stats.peak_resident_records,
        stats.publishes
    );
}

/// Ingests the buffered shard and publishes when the last matched epoch
/// advanced — the stdin equivalent of the engine's auto-publish trigger,
/// but explicit so every boundary crossing yields exactly one report line.
fn drain_shard(
    daemon: &mut BotMeterDaemon,
    shard: &mut Vec<ObservedLookup>,
    last_epoch_published: &mut Option<u64>,
) {
    if shard.is_empty() {
        return;
    }
    daemon.ingest(shard);
    shard.clear();
    let head_epoch = daemon.head_epoch();
    if head_epoch > *last_epoch_published {
        *last_epoch_published = head_epoch;
        let version = daemon.publish_now();
        report(daemon, version);
    }
}

/// Prints one machine-readable summary line for a freshly published
/// snapshot: its version, the change counts against the previous retained
/// snapshot, and the engine's residency counters.
fn report(daemon: &BotMeterDaemon, version: LandscapeVersion) {
    let stats = daemon.stats();
    let (added, removed, reestimated) = match version.0.checked_sub(1) {
        Some(prev) if prev >= 1 => daemon
            .store()
            .delta(LandscapeVersion(prev), version)
            .map(|d| (d.added(), d.removed(), d.reestimated()))
            .unwrap_or((0, 0, 0)),
        _ => daemon
            .store()
            .at(version)
            .map(|l| (l.len(), 0, 0))
            .unwrap_or((0, 0, 0)),
    };
    println!(
        "{{\"version\":{},\"cells\":{},\"added\":{},\"removed\":{},\"reestimated\":{},\
         \"resident_records\":{},\"stale_records\":{},\"matched\":{},\"ingested\":{}}}",
        version.0,
        daemon.cell_count(),
        added,
        removed,
        reestimated,
        stats.resident_records,
        stats.stale_records,
        stats.matched,
        stats.ingested
    );
}

fn parse<T: std::str::FromStr>(value: Option<String>, flag: &str) -> T {
    value
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| usage(&format!("{flag} needs a valid value")))
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: botmeterd --family NAME [--epochs E] [--model MODEL] \
         [--threads N] [--close-lag L] [--retention R] \
         [--shard-records S] [--delivery-rate F] [--data-dir DIR] \
         [--checkpoint-every N] [--final-snapshot PATH]   (trace on stdin)"
    );
    std::process::exit(2);
}
