//! `botmeterd` — the incremental charting daemon over a JSON-Lines feed.
//!
//! Reads an unbounded stream of observed lookups from stdin (the same
//! JSON-Lines format `simulate` emits and `estimate` consumes), ingests it
//! in shards, and prints one JSON summary line per published snapshot:
//! version, changed-cell counts against the previous snapshot, residency
//! and stream-quality counters. At end of input it publishes the trailing
//! partial epoch and prints the final landscape to stderr.
//!
//! ```sh
//! simulate --family newgoz --population 64 --epochs 7 | \
//!     botmeterd --family newgoz --epochs 7
//! ```
//!
//! Usage: `botmeterd --family NAME [--epochs E] [--model MODEL]
//! [--threads N] [--close-lag L] [--retention R] [--shard-records S]
//! [--delivery-rate F]`.

use botmeter_core::{BotMeter, BotMeterConfig, LandscapeVersion, ModelKind};
use botmeter_daemon::{BotMeterDaemon, DaemonOptions};
use botmeter_dga::DgaFamily;
use botmeter_dns::{trace, ObservedLookup};
use botmeter_exec::ExecPolicy;
use std::io;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut family: Option<DgaFamily> = None;
    let mut model = ModelKind::Auto;
    let mut epochs = 1u64;
    let mut threads = 0usize;
    let mut close_lag = 1u64;
    let mut retention = 8usize;
    let mut shard_records = 4096usize;
    let mut delivery_rate = 1.0f64;

    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        i += 1;
        let value = args.get(i).cloned();
        match flag {
            "--family" => {
                let name = value.unwrap_or_else(|| usage("--family needs a name"));
                family = Some(
                    DgaFamily::by_name(&name)
                        .unwrap_or_else(|| usage(&format!("unknown family {name:?}"))),
                );
            }
            "--model" => {
                let name = value.unwrap_or_else(|| usage("--model needs a name"));
                model = match name.to_ascii_lowercase().as_str() {
                    "auto" => ModelKind::Auto,
                    "timing" => ModelKind::Timing,
                    "poisson" => ModelKind::Poisson,
                    "bernoulli" => ModelKind::Bernoulli,
                    "coverage" => ModelKind::Coverage,
                    "sampling" => ModelKind::Sampling,
                    "windowoccupancy" => ModelKind::WindowOccupancy,
                    "hybrid" => ModelKind::Hybrid,
                    other => usage(&format!("unknown model {other:?}")),
                };
            }
            "--epochs" => epochs = parse(value, "--epochs"),
            "--threads" => threads = parse(value, "--threads"),
            "--close-lag" => close_lag = parse(value, "--close-lag"),
            "--retention" => retention = parse(value, "--retention"),
            "--shard-records" => shard_records = parse(value, "--shard-records"),
            "--delivery-rate" => delivery_rate = parse(value, "--delivery-rate"),
            other => usage(&format!("unknown flag {other}")),
        }
        i += 1;
    }
    let family = family.unwrap_or_else(|| usage("--family is required"));
    let policy = if threads == 0 {
        ExecPolicy::default()
    } else {
        ExecPolicy::with_threads(threads)
    };

    let meter = BotMeter::new(
        BotMeterConfig::new(family)
            .model(model)
            .delivery_rate(delivery_rate),
    );
    let options = DaemonOptions::new(0..epochs)
        .policy(policy)
        .close_lag(close_lag)
        .retention(retention.max(2)) // keep a previous snapshot to diff against
        .auto_publish(false); // publishing is driven per shard below
    let mut daemon = BotMeterDaemon::new(meter, options).unwrap_or_else(|e| usage(&e.to_string()));

    let stdin = io::stdin();
    let mut shard: Vec<ObservedLookup> = Vec::with_capacity(shard_records.max(1));
    let mut last_epoch_published: Option<u64> = None;
    for record in trace::read_jsonl_iter::<ObservedLookup, _>(stdin.lock()) {
        let lookup = record.unwrap_or_else(|e| usage(&e.to_string()));
        shard.push(lookup);
        if shard.len() >= shard_records.max(1) {
            drain_shard(&mut daemon, &mut shard, &mut last_epoch_published);
        }
    }
    drain_shard(&mut daemon, &mut shard, &mut last_epoch_published);
    // Publish the trailing partial epoch.
    let version = daemon.publish_now();
    report(&daemon, version);

    if let Some((version, landscape)) = daemon.latest() {
        eprintln!("[botmeterd] final snapshot {version}:");
        eprint!("{landscape}");
    }
    let stats = daemon.stats();
    eprintln!(
        "[botmeterd] ingested {} matched {} stale {} peak-resident {} publishes {}",
        stats.ingested,
        stats.matched,
        stats.stale_records,
        stats.peak_resident_records,
        stats.publishes
    );
}

/// Ingests the buffered shard and publishes when the last matched epoch
/// advanced — the stdin equivalent of the engine's auto-publish trigger,
/// but explicit so every boundary crossing yields exactly one report line.
fn drain_shard(
    daemon: &mut BotMeterDaemon,
    shard: &mut Vec<ObservedLookup>,
    last_epoch_published: &mut Option<u64>,
) {
    if shard.is_empty() {
        return;
    }
    daemon.ingest(shard);
    shard.clear();
    let head_epoch = daemon.head_epoch();
    if head_epoch > *last_epoch_published {
        *last_epoch_published = head_epoch;
        let version = daemon.publish_now();
        report(daemon, version);
    }
}

/// Prints one machine-readable summary line for a freshly published
/// snapshot: its version, the change counts against the previous retained
/// snapshot, and the engine's residency counters.
fn report(daemon: &BotMeterDaemon, version: LandscapeVersion) {
    let stats = daemon.stats();
    let (added, removed, reestimated) = match version.0.checked_sub(1) {
        Some(prev) if prev >= 1 => daemon
            .store()
            .delta(LandscapeVersion(prev), version)
            .map(|d| (d.added(), d.removed(), d.reestimated()))
            .unwrap_or((0, 0, 0)),
        _ => daemon
            .store()
            .at(version)
            .map(|l| (l.len(), 0, 0))
            .unwrap_or((0, 0, 0)),
    };
    println!(
        "{{\"version\":{},\"cells\":{},\"added\":{},\"removed\":{},\"reestimated\":{},\
         \"resident_records\":{},\"stale_records\":{},\"matched\":{},\"ingested\":{}}}",
        version.0,
        daemon.cell_count(),
        added,
        removed,
        reestimated,
        stats.resident_records,
        stats.stale_records,
        stats.matched,
        stats.ingested
    );
}

fn parse<T: std::str::FromStr>(value: Option<String>, flag: &str) -> T {
    value
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| usage(&format!("{flag} needs a valid value")))
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: botmeterd --family NAME [--epochs E] [--model MODEL] \
         [--threads N] [--close-lag L] [--retention R] \
         [--shard-records S] [--delivery-rate F]   (trace on stdin)"
    );
    std::process::exit(2);
}
