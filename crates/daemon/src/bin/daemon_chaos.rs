//! `daemon_chaos` — kill-and-restart harness for the crash-safe daemon.
//!
//! Proves `botmeterd`'s durability contract from the *outside*, against
//! the real binary, the real filesystem and real `kill -9`:
//!
//! 1. **Reference run**: feed a deterministic trace to an uninterrupted
//!    `botmeterd --data-dir`, capture its final snapshot file.
//! 2. **Chaos cycles**: feed the same trace to a daemon sharing one data
//!    directory, SIGKILL it after a deterministically-random number of
//!    records, restart, repeat — then let the last incarnation run to end
//!    of input and require its final snapshot to be **byte-identical** to
//!    the reference.
//! 3. **Corruption cycle**: flip a byte in the newest checkpoint between
//!    two kills and require recovery to fall back to the previous
//!    generation (plus journal replay) with the same final snapshot.
//! 4. **Graceful cycle**: SIGTERM mid-feed must exit 0 after a final
//!    checkpoint flush, and the follow-up run must again converge to the
//!    reference snapshot.
//!
//! The kill *points* are deterministic (seeded [`ChaCha12Rng`]); where
//! each SIGKILL lands inside the daemon is scheduler noise — which is the
//! point: the contract must hold wherever the axe falls.
//!
//! Usage: `daemon_chaos [--cycles N] [--per-server L] [--epochs E]
//! [--seed S] [--keep-dirs]`. Exits non-zero on any contract violation.

use botmeter_daemon::synthetic::{epoch_traffic, SoakLayout};
use botmeter_dga::DgaFamily;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};

const FAMILY: &str = "newgoz";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cycles = 20usize;
    let mut per_server = 600u32;
    let mut epochs = 3u64;
    let mut seed = 0xC4A0_5EEDu64;
    let mut keep_dirs = false;
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        i += 1;
        match flag {
            "--cycles" => cycles = parse(args.get(i), "--cycles"),
            "--per-server" => per_server = parse(args.get(i), "--per-server"),
            "--epochs" => epochs = parse(args.get(i), "--epochs"),
            "--seed" => seed = parse(args.get(i), "--seed"),
            "--keep-dirs" => {
                keep_dirs = true;
                continue;
            }
            other => fail(&format!("unknown flag {other}")),
        }
        i += 1;
    }

    let botmeterd = sibling("botmeterd");
    let family = DgaFamily::by_name(FAMILY).expect("preset exists");
    let layout = SoakLayout {
        servers: 8,
        active: 6,
        per_server: per_server.max(1),
    };
    let mut trace = Vec::new();
    for epoch in 0..epochs {
        for lookup in epoch_traffic(&family, epoch, layout) {
            let line = serde_json::to_string(&lookup).expect("lookups serialize");
            trace.push(line);
        }
    }
    let records = trace.len();
    println!("[chaos] trace: {records} records over {epochs} epochs; {cycles} kill cycles");

    let scratch = std::env::temp_dir().join(format!("botmeter-chaos-{}", std::process::id()));
    std::fs::create_dir_all(&scratch).unwrap_or_else(|e| fail(&format!("mkdir scratch: {e}")));

    // 1. Uninterrupted reference.
    let ref_snap = scratch.join("reference.snap");
    let ref_dir = scratch.join("reference.d");
    let mut child = spawn(&botmeterd, epochs, &ref_dir, &ref_snap);
    feed(&mut child, &trace, records);
    let status = child.wait().expect("wait reference");
    if !status.success() {
        fail(&format!("reference run failed: {status}"));
    }
    let reference = std::fs::read(&ref_snap).unwrap_or_else(|e| fail(&format!("read ref: {e}")));
    println!("[chaos] reference snapshot: {} bytes", reference.len());

    // 2. Kill-9 cycles against one shared data directory.
    let mut rng = ChaCha12Rng::seed_from_u64(seed);
    let chaos_dir = scratch.join("chaos.d");
    let chaos_snap = scratch.join("chaos.snap");
    for cycle in 0..cycles {
        let kill_after = rng.gen_range(1..records);
        let mut child = spawn(&botmeterd, epochs, &chaos_dir, &chaos_snap);
        feed(&mut child, &trace, kill_after);
        child.kill().expect("SIGKILL");
        let status = child.wait().expect("wait killed child");
        println!("[chaos] cycle {cycle}: SIGKILL after {kill_after} records (exit {status})");
    }
    converge(
        &botmeterd,
        epochs,
        &chaos_dir,
        &chaos_snap,
        &trace,
        &reference,
        "kill-9 cycles",
    );

    // 3. Corruption cycle: damage the newest checkpoint mid-sequence; the
    // next recovery must fall back a generation and still converge.
    let kill_after = rng.gen_range(records / 2..records);
    let mut child = spawn(&botmeterd, epochs, &chaos_dir, &chaos_snap);
    feed(&mut child, &trace, kill_after);
    child.kill().expect("SIGKILL");
    child.wait().expect("wait killed child");
    match newest_checkpoint(&chaos_dir) {
        Some(path) => {
            corrupt_middle_byte(&path);
            println!("[chaos] corrupted {}", path.display());
        }
        None => println!("[chaos] no checkpoint written before the corruption kill; skipping flip"),
    }
    converge(
        &botmeterd,
        epochs,
        &chaos_dir,
        &chaos_snap,
        &trace,
        &reference,
        "corruption cycle",
    );

    // 4. Graceful cycle: SIGTERM mid-feed must flush and exit 0.
    let term_after = rng.gen_range(1..records);
    let mut child = spawn(&botmeterd, epochs, &chaos_dir, &chaos_snap);
    feed_keep_open(&mut child, &trace, term_after);
    let sigterm = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("spawn kill(1)");
    if !sigterm.success() {
        fail("kill -TERM failed");
    }
    drop(child.stdin.take()); // close the feed; the handler is now set
    let status = child.wait().expect("wait SIGTERMed child");
    if status.code() != Some(0) {
        fail(&format!("SIGTERM should exit 0, got {status}"));
    }
    println!("[chaos] SIGTERM after {term_after} records: clean exit");
    converge(
        &botmeterd,
        epochs,
        &chaos_dir,
        &chaos_snap,
        &trace,
        &reference,
        "graceful cycle",
    );

    if keep_dirs {
        println!("[chaos] PASS (scratch kept at {})", scratch.display());
    } else {
        let _ = std::fs::remove_dir_all(&scratch);
        println!("[chaos] PASS");
    }
}

/// Spawns `botmeterd` in durable mode over `data_dir`.
fn spawn(botmeterd: &Path, epochs: u64, data_dir: &Path, snap: &Path) -> Child {
    Command::new(botmeterd)
        .args(["--family", FAMILY, "--epochs", &epochs.to_string()])
        .args(["--shard-records", "500", "--checkpoint-every", "4"])
        .arg("--data-dir")
        .arg(data_dir)
        .arg("--final-snapshot")
        .arg(snap)
        .stdin(Stdio::piped())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .unwrap_or_else(|e| fail(&format!("spawn {}: {e}", botmeterd.display())))
}

/// Writes the first `count` trace records to the child's stdin, then
/// closes the feed. Broken pipes (child already dead) are tolerated.
fn feed(child: &mut Child, trace: &[String], count: usize) {
    feed_keep_open(child, trace, count);
    drop(child.stdin.take());
}

/// Like [`feed`] but leaves stdin open, so a signal can land while the
/// daemon is mid-stream rather than at end-of-input.
fn feed_keep_open(child: &mut Child, trace: &[String], count: usize) {
    let stdin = child.stdin.as_mut().expect("piped stdin");
    for line in &trace[..count.min(trace.len())] {
        if stdin
            .write_all(line.as_bytes())
            .and_then(|_| stdin.write_all(b"\n"))
            .is_err()
        {
            return; // the child died mid-feed; that is chaos working
        }
    }
    let _ = stdin.flush();
}

/// Runs one uninterrupted pass over the shared data directory and
/// requires the final snapshot to match the reference byte-for-byte.
fn converge(
    botmeterd: &Path,
    epochs: u64,
    data_dir: &Path,
    snap: &Path,
    trace: &[String],
    reference: &[u8],
    label: &str,
) {
    let mut child = spawn(botmeterd, epochs, data_dir, snap);
    feed(&mut child, trace, trace.len());
    let status = child.wait().expect("wait convergence run");
    if !status.success() {
        fail(&format!("{label}: convergence run failed: {status}"));
    }
    let recovered = std::fs::read(snap).unwrap_or_else(|e| fail(&format!("read {label}: {e}")));
    if recovered != reference {
        fail(&format!(
            "{label}: recovered snapshot differs from the uninterrupted reference \
             ({} vs {} bytes)",
            recovered.len(),
            reference.len()
        ));
    }
    // Durability state must survive for the next scenario; only the
    // snapshot file is per-run.
    println!("[chaos] {label}: snapshot bit-identical to reference");
}

/// The newest `checkpoint.*.bmck` in `dir`, by embedded sequence number.
fn newest_checkpoint(dir: &Path) -> Option<PathBuf> {
    let mut names: Vec<String> = std::fs::read_dir(dir)
        .ok()?
        .filter_map(|e| e.ok()?.file_name().into_string().ok())
        .filter(|n| n.starts_with("checkpoint.") && n.ends_with(".bmck"))
        .collect();
    names.sort();
    names.pop().map(|n| dir.join(n))
}

/// Flips one byte in the middle of `path` in place (a deliberately
/// non-atomic scribble — this simulates disk damage, not a writer).
fn corrupt_middle_byte(path: &Path) {
    let mut file = std::fs::OpenOptions::new()
        .read(true)
        .write(true)
        .open(path)
        .unwrap_or_else(|e| fail(&format!("open for corruption: {e}")));
    let len = file.metadata().map(|m| m.len()).unwrap_or(0);
    if len == 0 {
        return;
    }
    let pos = len / 2;
    let mut byte = [0u8];
    file.seek(SeekFrom::Start(pos)).expect("seek");
    file.read_exact(&mut byte).expect("read target byte");
    byte[0] ^= 0xFF;
    file.seek(SeekFrom::Start(pos)).expect("seek back");
    file.write_all(&byte).expect("write corruption");
}

/// The path of a sibling binary in the same target directory.
fn sibling(name: &str) -> PathBuf {
    let mut path = std::env::current_exe().unwrap_or_else(|e| fail(&format!("current_exe: {e}")));
    path.set_file_name(name);
    if !path.exists() {
        fail(&format!(
            "{} not found next to daemon_chaos — build it first (cargo build --bin botmeterd)",
            path.display()
        ));
    }
    path
}

fn parse<T: std::str::FromStr>(value: Option<&String>, flag: &str) -> T {
    value
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| fail(&format!("{flag} needs a valid value")))
}

fn fail(msg: &str) -> ! {
    eprintln!("[chaos] FAIL: {msg}");
    std::process::exit(1);
}
