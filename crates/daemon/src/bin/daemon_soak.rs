//! `daemon_soak` — the bounded soak harness CI runs against `botmeterd`'s
//! engine.
//!
//! Drives N epochs of deterministic synthetic traffic (rotating active
//! servers, see [`botmeter_daemon::synthetic`]) through a
//! [`BotMeterDaemon`] and verifies, exiting non-zero on the first
//! violation:
//!
//! 1. **Equivalence** — at every checkpoint the published snapshot is
//!    bit-identical to a from-scratch batch chart over everything ingested;
//! 2. **Flat residency** — peak resident records stay bounded by a few
//!    epochs' worth of traffic, independent of how many epochs ran;
//! 3. **Delta integrity** — every adjacent snapshot pair round-trips
//!    through its [`LandscapeDelta`](botmeter_core::LandscapeDelta);
//! 4. **Incrementality** — re-estimated cells stay proportional to changed
//!    traffic, far below publishes × landscape size.
//!
//! Usage: `daemon_soak [--epochs N] [--family NAME] [--servers S]
//! [--active A] [--per-server K] [--check-every C]`.

use botmeter_core::{BotMeter, BotMeterConfig};
use botmeter_daemon::synthetic::{epoch_traffic, SoakLayout};
use botmeter_daemon::{BotMeterDaemon, DaemonOptions};
use botmeter_dga::DgaFamily;
use botmeter_dns::ObservedLookup;
use botmeter_exec::ExecPolicy;
use botmeter_obs::Obs;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut epochs = 30u64;
    let mut family = DgaFamily::murofet();
    let mut layout = SoakLayout::default();
    let mut check_every = 10u64;

    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        i += 1;
        let value = args.get(i).cloned();
        match flag {
            "--epochs" => epochs = parse(value, "--epochs"),
            "--family" => {
                let name = value.unwrap_or_else(|| usage("--family needs a name"));
                family = DgaFamily::by_name(&name)
                    .unwrap_or_else(|| usage(&format!("unknown family {name:?}")));
            }
            "--servers" => layout.servers = parse(value, "--servers"),
            "--active" => layout.active = parse(value, "--active"),
            "--per-server" => layout.per_server = parse(value, "--per-server"),
            "--check-every" => check_every = parse(value, "--check-every"),
            other => usage(&format!("unknown flag {other}")),
        }
        i += 1;
    }
    if epochs == 0 {
        usage("--epochs must be positive");
    }

    let close_lag = 1u64;
    let (obs, registry) = Obs::collecting();
    let meter = BotMeter::new(BotMeterConfig::new(family.clone()));
    let mut daemon = BotMeterDaemon::new(
        meter,
        DaemonOptions::new(0..epochs)
            .policy(ExecPolicy::Sequential)
            .close_lag(close_lag)
            .retention(4)
            .auto_publish(false)
            .obs(obs),
    )
    .unwrap_or_else(|e| fail(&format!("daemon construction failed: {e}")));

    // The harness keeps the full trace the daemon deliberately does not.
    let mut full: Vec<ObservedLookup> = Vec::new();
    let mut prev_version = None;
    for epoch in 0..epochs {
        let traffic = epoch_traffic(&family, epoch, layout);
        daemon.ingest(&traffic);
        full.extend(traffic);
        let version = daemon.publish_now();
        // 3. Adjacent snapshots must round-trip through their delta.
        if let Some(prev) = prev_version {
            let delta = daemon
                .store()
                .delta(prev, version)
                .unwrap_or_else(|e| fail(&format!("adjacent versions not retained: {e}")));
            let base = daemon.store().at(prev).expect("retained").clone();
            let next = daemon.store().at(version).expect("retained");
            match base.apply(&delta) {
                Ok(rebuilt) if &rebuilt == next => {}
                Ok(_) => fail(&format!(
                    "delta {prev}->{version} rebuilt a different snapshot"
                )),
                Err(e) => fail(&format!("delta {prev}->{version} failed to apply: {e}")),
            }
        }
        prev_version = Some(version);
        // 1. Periodic incremental == batch check (the final epoch always).
        if check_every > 0 && (epoch % check_every == 0 || epoch + 1 == epochs) {
            let (_, snapshot) = daemon.latest().expect("published");
            let reference = daemon.reference_chart(&full);
            if snapshot != &reference {
                fail(&format!(
                    "snapshot diverged from batch chart at epoch {epoch}"
                ));
            }
        }
    }

    let stats = daemon.stats();
    // 2. Flat residency: bounded by the close window, not by epoch count.
    let per_epoch = layout.records_per_epoch();
    let residency_bound = per_epoch * (close_lag as usize + 2);
    if stats.peak_resident_records > residency_bound {
        fail(&format!(
            "peak residency {} exceeds bound {residency_bound} ({per_epoch}/epoch, lag {close_lag})",
            stats.peak_resident_records
        ));
    }
    if epochs >= 10 && stats.peak_resident_records * 2 > stats.matched as usize {
        fail(&format!(
            "peak residency {} is not flat against {} matched records",
            stats.peak_resident_records, stats.matched
        ));
    }
    // 4. Incrementality: each publish re-estimated only the changed cells.
    let full_recharting_cost: u64 = (1..=epochs).map(|e| e * layout.active.max(1) as u64).sum();
    if stats.cells_reestimated >= full_recharting_cost {
        fail(&format!(
            "re-estimated {} cells; full recharting would cost {full_recharting_cost}",
            stats.cells_reestimated
        ));
    }
    let snapshot = registry.snapshot();
    if snapshot.counter("daemon.resident_records") != Some(stats.peak_resident_records as u64) {
        fail("daemon.resident_records gauge disagrees with the engine's peak");
    }

    println!(
        "{{\"epochs\":{epochs},\"publishes\":{},\"cells\":{},\"reestimated\":{},\
         \"peak_resident\":{},\"matched\":{},\"rechart_bound\":{full_recharting_cost}}}",
        stats.publishes,
        daemon.cell_count(),
        stats.cells_reestimated,
        stats.peak_resident_records,
        stats.matched
    );
    eprintln!("[daemon_soak] ok: {epochs} epochs, flat residency, incremental == batch");
}

fn parse<T: std::str::FromStr>(value: Option<String>, flag: &str) -> T {
    value
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| usage(&format!("{flag} needs a valid value")))
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: daemon_soak [--epochs N] [--family NAME] [--servers S] \
         [--active A] [--per-server K] [--check-every C]"
    );
    std::process::exit(2);
}

fn fail(msg: &str) -> ! {
    eprintln!("[daemon_soak] FAIL: {msg}");
    std::process::exit(1);
}
