//! Crash-safe `botmeterd`: the durability layer around the engine.
//!
//! [`DurableDaemon`] wraps a [`BotMeterDaemon`] with a write-ahead journal
//! ([`Wal`]) and periodic checkpoints ([`CheckpointManager`]), giving the
//! daemon one contract:
//!
//! > A daemon killed at **any** instant and restarted from the same data
//! > directory publishes snapshots **bit-identical** to an uninterrupted
//! > run.
//!
//! The mechanism: every shard is appended to the journal (CRC-framed,
//! fsynced) *before* it reaches the engine, so acknowledged ingest is
//! replayable; every `checkpoint_every` shards the complete engine state
//! is written atomically and the journal is truncated back to the oldest
//! retained checkpoint's watermark. Recovery loads the newest readable
//! checkpoint (falling back a generation past corruption), replays the
//! journal suffix through the normal ingest path — which re-fires the
//! same auto-publishes with the same versions — and resumes.
//!
//! Transient I/O faults are retried under bounded exponential backoff
//! with deterministic jitter ([`RetryPolicy`]); a journal that stays
//! unavailable past the retry budget degrades the daemon (counted, never
//! crashed): ingest and publishing continue in memory, and the next
//! successful checkpoint heals durability by capturing the unjournaled
//! state wholesale.

use crate::checkpoint::{CheckpointError, CheckpointManager};
use crate::engine::{BotMeterDaemon, DaemonOptions, DaemonStats};
use crate::storage::Storage;
use crate::store::StoreError;
use crate::wal::{Wal, WalCodecError, WalFrame};
use botmeter_core::{BotMeter, LandscapeVersion};
use botmeter_dns::ObservedLookup;
use botmeter_obs::Obs;
use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha12Rng;
use std::fmt;
use std::io;
use std::time::Duration;

/// Everything that can go wrong in the durability layer, typed.
#[derive(Debug)]
#[non_exhaustive]
pub enum DurabilityError {
    /// An I/O operation failed past its retry budget.
    Io {
        /// What was being attempted (`"wal.append"`, `"checkpoint.save"`, ...).
        op: &'static str,
        /// The final error after retries.
        source: io::Error,
    },
    /// The journal is structurally damaged mid-log (not a torn tail).
    CorruptJournal {
        /// The codec's diagnosis.
        source: WalCodecError,
    },
    /// Every stored checkpoint generation is unreadable.
    NoUsableCheckpoint {
        /// Each skipped generation's watermark and diagnosis.
        skipped: Vec<(u64, CheckpointError)>,
    },
    /// A journal frame's payload does not deserialize into a shard.
    BadFramePayload {
        /// The frame's sequence number.
        seq: u64,
        /// The deserialization failure.
        reason: String,
    },
    /// The checkpoint was taken under a different configuration.
    ConfigMismatch {
        /// This engine's fingerprint.
        expected: String,
        /// The checkpoint's fingerprint.
        found: String,
    },
    /// The checkpointed snapshot sequence is internally inconsistent.
    Store(StoreError),
    /// Invalid engine parameters (delivery rate, epoch range).
    Engine(botmeter_core::Error),
}

impl fmt::Display for DurabilityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurabilityError::Io { op, source } => {
                write!(f, "{op} failed past the retry budget: {source}")
            }
            DurabilityError::CorruptJournal { source } => {
                write!(f, "refusing to replay a damaged journal: {source}")
            }
            DurabilityError::NoUsableCheckpoint { skipped } => {
                write!(f, "no stored checkpoint is readable (")?;
                for (i, (seq, e)) in skipped.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    write!(f, "seq {seq}: {e}")?;
                }
                write!(f, ")")
            }
            DurabilityError::BadFramePayload { seq, reason } => {
                write!(
                    f,
                    "journal frame {seq} passed its CRC but does not parse: {reason}"
                )
            }
            DurabilityError::ConfigMismatch { expected, found } => write!(
                f,
                "checkpoint was taken under a different configuration: \
                 engine is {expected:?}, checkpoint says {found:?}"
            ),
            DurabilityError::Store(e) => write!(f, "checkpointed snapshots are inconsistent: {e}"),
            DurabilityError::Engine(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for DurabilityError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DurabilityError::Io { source, .. } => Some(source),
            DurabilityError::CorruptJournal { source } => Some(source),
            DurabilityError::Store(e) => Some(e),
            DurabilityError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<botmeter_core::Error> for DurabilityError {
    fn from(e: botmeter_core::Error) -> Self {
        DurabilityError::Engine(e)
    }
}

impl From<StoreError> for DurabilityError {
    fn from(e: StoreError) -> Self {
        DurabilityError::Store(e)
    }
}

/// Bounded exponential backoff with deterministic jitter.
///
/// Attempt `i` (zero-based) sleeps `min(cap, base · 2^i)` scaled by a
/// jitter factor in `[0.5, 1.0)` drawn from a [`ChaCha12Rng`] seeded with
/// `seed` — the workspace's deterministic-RNG discipline extended to
/// fault handling, so a retry schedule is reproducible in tests.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts (the first try plus retries); 0 behaves as 1.
    pub attempts: u32,
    /// Backoff before the first retry.
    pub base: Duration,
    /// Ceiling on any single backoff.
    pub cap: Duration,
    /// Seed for the jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 4,
            base: Duration::from_millis(2),
            cap: Duration::from_millis(100),
            seed: 0xB07_3E7A,
        }
    }
}

impl RetryPolicy {
    /// The deterministic jittered backoff schedule: one duration per
    /// retry (so `attempts - 1` entries).
    pub fn backoff_schedule(&self) -> Vec<Duration> {
        let mut rng = ChaCha12Rng::seed_from_u64(self.seed);
        (0..self.attempts.saturating_sub(1))
            .map(|i| {
                let exp = self.base.saturating_mul(1u32 << i.min(20));
                let capped = exp.min(self.cap);
                // Jitter factor in [0.5, 1.0): decorrelates a fleet of
                // daemons retrying against the same sick disk.
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                capped.mul_f64(0.5 + 0.5 * unit)
            })
            .collect()
    }
}

/// Runs `op` under `policy`, sleeping between attempts via `sleeper`.
fn with_retries<T>(
    policy: &RetryPolicy,
    obs: &Obs,
    counter: &str,
    sleeper: &mut dyn FnMut(Duration),
    mut op: impl FnMut() -> io::Result<T>,
) -> io::Result<T> {
    let schedule = policy.backoff_schedule();
    let mut last = None;
    for (attempt, pause) in schedule
        .iter()
        .map(Some)
        .chain(std::iter::once(None))
        .enumerate()
    {
        match op() {
            Ok(v) => return Ok(v),
            Err(e) => {
                if obs.enabled() {
                    obs.counter_add(counter, 1);
                }
                let _ = attempt;
                last = Some(e);
                if let Some(pause) = pause {
                    sleeper(*pause);
                }
            }
        }
    }
    Err(last.unwrap_or_else(|| io::Error::other("retry loop ran zero attempts")))
}

/// Tuning of the durability layer.
pub struct DurabilityOptions {
    /// Checkpoint after this many journaled shards (clamped ≥ 1).
    pub checkpoint_every: u64,
    /// Retry budget and backoff shape for journal and checkpoint I/O.
    pub retry: RetryPolicy,
    /// How retries pause. Defaults to `std::thread::sleep`; tests inject
    /// a recorder so no wall-clock time passes.
    pub sleeper: Box<dyn FnMut(Duration) + Send>,
}

impl Default for DurabilityOptions {
    fn default() -> Self {
        DurabilityOptions {
            checkpoint_every: 16,
            retry: RetryPolicy::default(),
            sleeper: Box::new(std::thread::sleep),
        }
    }
}

impl fmt::Debug for DurabilityOptions {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DurabilityOptions")
            .field("checkpoint_every", &self.checkpoint_every)
            .field("retry", &self.retry)
            .finish_non_exhaustive()
    }
}

impl DurabilityOptions {
    /// Options checkpointing every `checkpoint_every` shards.
    pub fn new(checkpoint_every: u64) -> Self {
        DurabilityOptions {
            checkpoint_every,
            ..DurabilityOptions::default()
        }
    }
}

/// What recovery found and did, reported once at startup.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Watermark of the checkpoint recovery restored from (0 = fresh).
    pub checkpoint_seq: u64,
    /// Checkpoint generations skipped as corrupt, newest first.
    pub corrupt_checkpoints: u64,
    /// Journal frames replayed on top of the checkpoint.
    pub replayed_frames: u64,
    /// Observed lookups those frames contained.
    pub replayed_records: u64,
    /// Bytes of a torn final frame that were discarded.
    pub torn_tail_bytes: u64,
    /// Total records the recovered engine has ingested — the resume
    /// offset for a replayable input source.
    pub ingested_records: u64,
}

/// Running durability counters (mirrored as `wal.*` / `ckpt.*`
/// observability metrics when an [`Obs`] handle is attached).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DurabilityStats {
    /// Journal frames successfully appended.
    pub wal_appends: u64,
    /// Shards ingested *without* journal coverage (degraded mode).
    pub unjournaled_shards: u64,
    /// Checkpoints successfully written.
    pub checkpoints: u64,
    /// Checkpoint attempts that failed past the retry budget.
    pub failed_checkpoints: u64,
}

/// A [`BotMeterDaemon`] that survives `kill -9`.
///
/// See the module docs for the crash-safety contract. The wrapper owns
/// the engine; read access goes through [`engine`](Self::engine).
pub struct DurableDaemon<S: Storage> {
    engine: BotMeterDaemon,
    wal: Wal<S>,
    options: DurabilityOptions,
    obs: Obs,
    /// Shards journaled and applied (the journal sequence counter).
    seq: u64,
    /// Watermark of the newest checkpoint on storage.
    last_checkpoint_seq: u64,
    /// Whether the journal is currently unavailable (degraded mode).
    degraded: bool,
    stats: DurabilityStats,
}

impl<S: Storage> fmt::Debug for DurableDaemon<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DurableDaemon")
            .field("seq", &self.seq)
            .field("last_checkpoint_seq", &self.last_checkpoint_seq)
            .field("degraded", &self.degraded)
            .field("stats", &self.stats)
            .field("engine", &self.engine)
            .finish_non_exhaustive()
    }
}

impl<S: Storage> DurableDaemon<S> {
    /// Opens (or recovers) a durable daemon from `storage`.
    ///
    /// Fresh storage starts an empty engine and journal. Existing storage
    /// runs recovery: newest readable checkpoint → engine restore →
    /// journal suffix replay through the normal ingest path (re-firing
    /// the same auto-publishes with the same versions) → torn-tail
    /// repair. Returns the running daemon plus a [`RecoveryReport`].
    ///
    /// # Errors
    ///
    /// Mid-log journal corruption, an unreadable checkpoint set, a
    /// config-fingerprint mismatch, invalid engine parameters, or I/O
    /// failing past the retry budget.
    pub fn open(
        meter: BotMeter,
        engine_options: DaemonOptions,
        storage: S,
        mut options: DurabilityOptions,
    ) -> Result<(Self, RecoveryReport), DurabilityError> {
        let obs = engine_options.observability();
        let mut report = RecoveryReport::default();

        // 1. Newest readable checkpoint, falling back over corrupt ones.
        let mut wal = Wal::create(storage).map_err(|source| DurabilityError::Io {
            op: "wal.create",
            source,
        })?;
        let (state, skipped) =
            CheckpointManager::load_latest(wal.storage_mut()).map_err(|source| {
                DurabilityError::Io {
                    op: "checkpoint.load",
                    source,
                }
            })?;
        report.corrupt_checkpoints = skipped.len() as u64;
        if obs.enabled() && !skipped.is_empty() {
            obs.counter_add("ckpt.corrupt", skipped.len() as u64);
        }
        let had_checkpoint_files = state.is_some() || !skipped.is_empty();
        if state.is_none() && !skipped.is_empty() {
            return Err(DurabilityError::NoUsableCheckpoint { skipped });
        }

        // 2. Restore the engine (or start fresh).
        let engine = match &state {
            Some(ckpt) => {
                let expected = BotMeterDaemon::new(meter.clone(), engine_options.clone())?
                    .config_fingerprint();
                if ckpt.config != expected {
                    return Err(DurabilityError::ConfigMismatch {
                        expected,
                        found: ckpt.config.clone(),
                    });
                }
                report.checkpoint_seq = ckpt.wal_seq;
                BotMeterDaemon::from_checkpoint(meter, engine_options, ckpt)?
            }
            None => BotMeterDaemon::new(meter, engine_options)?,
        };
        let checkpoint_seq = state.as_ref().map(|c| c.wal_seq).unwrap_or(0);

        // 3. Replay the journal suffix through the normal ingest path.
        let contents = match wal
            .load_and_repair()
            .map_err(|source| DurabilityError::Io {
                op: "wal.load",
                source,
            })? {
            Ok(c) => c,
            Err(source) => return Err(DurabilityError::CorruptJournal { source }),
        };
        report.torn_tail_bytes = contents.torn_tail_bytes as u64;
        let mut daemon = DurableDaemon {
            engine,
            wal,
            options: {
                options.checkpoint_every = options.checkpoint_every.max(1);
                options
            },
            obs,
            seq: checkpoint_seq.max(contents.base_seq),
            last_checkpoint_seq: checkpoint_seq,
            degraded: false,
            stats: DurabilityStats::default(),
        };
        for frame in &contents.frames {
            if frame.seq <= checkpoint_seq {
                continue;
            }
            let shard: Vec<ObservedLookup> =
                serde_json::from_str(&String::from_utf8_lossy(&frame.payload)).map_err(|e| {
                    DurabilityError::BadFramePayload {
                        seq: frame.seq,
                        reason: e.to_string(),
                    }
                })?;
            report.replayed_frames += 1;
            report.replayed_records += shard.len() as u64;
            daemon.engine.ingest(&shard);
            daemon.seq = frame.seq;
        }
        if daemon.obs.enabled() && (had_checkpoint_files || report.replayed_frames > 0) {
            daemon.obs.counter_add("daemon.recoveries", 1);
            daemon
                .obs
                .counter_add("wal.replayed_frames", report.replayed_frames);
        }
        report.ingested_records = daemon.engine.stats().ingested;
        Ok((daemon, report))
    }

    /// Journals then ingests one shard, checkpointing on cadence.
    ///
    /// The shard is appended to the journal (under retry/backoff) before
    /// it touches the engine; a journal that stays unavailable degrades
    /// the daemon (counted via [`DurabilityStats::unjournaled_shards`]
    /// and `wal.degraded_shards`) instead of failing the serve path.
    /// Returns the version auto-published by this shard, if any.
    pub fn ingest(&mut self, shard: &[ObservedLookup]) -> Option<LandscapeVersion> {
        let next_seq = self.seq + 1;
        let payload = serde_json::to_string(&shard.to_vec()).expect("lookups always serialize");
        let start = self.obs.clock();
        let appended = with_retries(
            &self.options.retry,
            &self.obs,
            "wal.append_retries",
            &mut self.options.sleeper,
            || self.wal.append(next_seq, payload.as_bytes()),
        );
        match appended {
            Ok(()) => {
                self.stats.wal_appends += 1;
                self.degraded = false;
                if self.obs.enabled() {
                    self.obs.counter_add("wal.appends", 1);
                    self.obs.observe_since("wal.fsync_ns", start);
                }
            }
            Err(_) => {
                // Degraded mode: the engine keeps serving; durability of
                // this shard now rides on the next successful checkpoint.
                self.stats.unjournaled_shards += 1;
                self.degraded = true;
                if self.obs.enabled() {
                    self.obs.counter_add("wal.degraded_shards", 1);
                }
            }
        }
        self.seq = next_seq;
        let published = self.engine.ingest(shard);
        if self.seq.is_multiple_of(self.options.checkpoint_every) {
            self.checkpoint_now().ok(); // failure counted, serve path lives
        }
        published
    }

    /// Writes a checkpoint at the current watermark, retires old
    /// generations, and truncates the journal to the oldest retained
    /// checkpoint's watermark.
    ///
    /// # Errors
    ///
    /// [`DurabilityError::Io`] when the write fails past the retry
    /// budget; the failure is also counted in
    /// [`DurabilityStats::failed_checkpoints`] so callers on the ingest
    /// path can ignore it safely.
    pub fn checkpoint_now(&mut self) -> Result<(), DurabilityError> {
        let state = self.engine.checkpoint_state(self.seq);
        let start = self.obs.clock();
        let saved = with_retries(
            &self.options.retry,
            &self.obs,
            "ckpt.save_retries",
            &mut self.options.sleeper,
            || CheckpointManager::save(self.wal.storage_mut(), &state),
        );
        let oldest_retained = match saved {
            Ok(seq) => seq,
            Err(source) => {
                self.stats.failed_checkpoints += 1;
                if self.obs.enabled() {
                    self.obs.counter_add("ckpt.failed", 1);
                }
                return Err(DurabilityError::Io {
                    op: "checkpoint.save",
                    source,
                });
            }
        };
        self.stats.checkpoints += 1;
        self.last_checkpoint_seq = self.seq;
        // A successful checkpoint covers every shard up to `seq`,
        // including any that skipped the journal while degraded.
        self.degraded = false;
        if self.obs.enabled() {
            self.obs.counter_add("ckpt.saves", 1);
            self.obs.observe_since("ckpt.write_ns", start);
        }
        // Truncate the journal to the *oldest retained* watermark so a
        // corrupt newest checkpoint can still fall back and replay.
        let keep: Vec<WalFrame> = match self.wal.load() {
            Ok(Ok(contents)) => contents
                .frames
                .into_iter()
                .filter(|f| f.seq > oldest_retained)
                .collect(),
            // Unreadable journal during rotation: leave it alone; the
            // next recovery will surface the damage with full context.
            Ok(Err(_)) | Err(_) => return Ok(()),
        };
        let rotated = with_retries(
            &self.options.retry,
            &self.obs,
            "wal.rotate_retries",
            &mut self.options.sleeper,
            || self.wal.rotate(oldest_retained, &keep),
        );
        if let Err(source) = rotated {
            // Rotation is an optimization — an over-long journal replays
            // extra already-checkpointed frames, which recovery skips.
            if self.obs.enabled() {
                self.obs.counter_add("wal.rotate_failed", 1);
            }
            let _ = source;
        }
        Ok(())
    }

    /// Graceful shutdown: a final checkpoint flush. Called by `botmeterd`
    /// on SIGTERM/SIGINT so a restart needs no journal replay.
    pub fn shutdown(&mut self) -> Result<(), DurabilityError> {
        self.checkpoint_now()
    }

    /// Publishes the trailing partial epoch (see
    /// [`BotMeterDaemon::publish_now`]).
    pub fn publish_now(&mut self) -> LandscapeVersion {
        self.engine.publish_now()
    }

    /// The wrapped engine (snapshots, stats, stores).
    pub fn engine(&self) -> &BotMeterDaemon {
        &self.engine
    }

    /// Running engine counters (convenience for [`engine`](Self::engine)).
    pub fn stats(&self) -> DaemonStats {
        self.engine.stats()
    }

    /// Running durability counters.
    pub fn durability_stats(&self) -> DurabilityStats {
        self.stats
    }

    /// Whether the journal is currently unavailable and ingest is riding
    /// on checkpoints alone.
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    /// The journal sequence number of the last ingested shard.
    pub fn journal_seq(&self) -> u64 {
        self.seq
    }

    /// Mutable access to the underlying storage (chaos tests corrupt
    /// checkpoints through this).
    pub fn storage_mut(&mut self) -> &mut S {
        self.wal.storage_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::{FailingStorage, MemStorage};
    use botmeter_core::BotMeterConfig;
    use botmeter_dga::DgaFamily;
    use botmeter_exec::ExecPolicy;
    use botmeter_sim::ScenarioSpec;
    use std::sync::{Arc, Mutex};

    fn meter() -> BotMeter {
        BotMeter::new(BotMeterConfig::new(DgaFamily::murofet()))
    }

    fn options() -> DaemonOptions {
        DaemonOptions::new(0..2).policy(ExecPolicy::Sequential)
    }

    fn observed() -> Vec<ObservedLookup> {
        ScenarioSpec::builder(DgaFamily::murofet())
            .population(24)
            .num_epochs(2)
            .seed(17)
            .build()
            .expect("valid scenario")
            .run(ExecPolicy::default())
            .observed()
            .to_vec()
    }

    #[test]
    fn backoff_schedule_is_deterministic_bounded_and_jittered() {
        let policy = RetryPolicy {
            attempts: 6,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(50),
            seed: 7,
        };
        let a = policy.backoff_schedule();
        let b = policy.backoff_schedule();
        assert_eq!(a, b, "same seed, same schedule");
        assert_eq!(a.len(), 5);
        for (i, d) in a.iter().enumerate() {
            let exp = Duration::from_millis(10).saturating_mul(1 << i);
            let cap = exp.min(Duration::from_millis(50));
            assert!(
                *d >= cap / 2 && *d < cap,
                "attempt {i}: {d:?} not in [{:?}, {cap:?})",
                cap / 2
            );
        }
        let other = RetryPolicy { seed: 8, ..policy }.backoff_schedule();
        assert_ne!(a, other, "different seed, different jitter");
    }

    #[test]
    fn transient_append_faults_are_retried_through() {
        let mut storage = FailingStorage::new(MemStorage::new());
        storage.fail_next_appends(2); // retry budget is 4 attempts
        let slept: Arc<Mutex<Vec<Duration>>> = Arc::default();
        let sleeps = slept.clone();
        let opts = DurabilityOptions {
            sleeper: Box::new(move |d| sleeps.lock().unwrap().push(d)),
            ..DurabilityOptions::new(1000)
        };
        let (mut daemon, _) = DurableDaemon::open(meter(), options(), storage, opts).unwrap();
        daemon.ingest(&observed()[..64]);
        assert!(!daemon.is_degraded());
        let stats = daemon.durability_stats();
        assert_eq!(stats.wal_appends, 1);
        assert_eq!(stats.unjournaled_shards, 0);
        assert_eq!(slept.lock().unwrap().len(), 2, "two backoff pauses");
    }

    #[test]
    fn journal_outage_degrades_and_checkpoint_heals() {
        let storage = FailingStorage::new(MemStorage::new());
        let opts = DurabilityOptions {
            sleeper: Box::new(|_| {}),
            ..DurabilityOptions::new(1000)
        };
        let (mut daemon, _) = DurableDaemon::open(meter(), options(), storage, opts).unwrap();
        let stream = observed();
        daemon.storage_mut().fail_next_appends(u64::MAX);
        daemon.ingest(&stream[..64]);
        daemon.ingest(&stream[64..128]);
        assert!(daemon.is_degraded(), "journal gone, serve path alive");
        assert_eq!(daemon.durability_stats().unjournaled_shards, 2);
        assert_eq!(daemon.stats().ingested, 128, "ingest kept working");
        // A successful checkpoint covers the unjournaled shards.
        daemon.storage_mut().fail_next_appends(0);
        daemon.checkpoint_now().unwrap();
        assert!(!daemon.is_degraded());
        // Recovery from that storage resumes with everything ingested.
        let storage =
            std::mem::replace(daemon.storage_mut(), FailingStorage::new(MemStorage::new()));
        drop(daemon);
        let opts = DurabilityOptions {
            sleeper: Box::new(|_| {}),
            ..DurabilityOptions::new(1000)
        };
        let (recovered, report) = DurableDaemon::open(meter(), options(), storage, opts).unwrap();
        assert_eq!(recovered.stats().ingested, 128);
        assert_eq!(report.replayed_frames, 0, "checkpoint covered everything");
    }

    #[test]
    fn checkpoint_failure_is_counted_not_fatal() {
        let storage = FailingStorage::new(MemStorage::new());
        let opts = DurabilityOptions {
            sleeper: Box::new(|_| {}),
            ..DurabilityOptions::new(1)
        };
        let (mut daemon, _) = DurableDaemon::open(meter(), options(), storage, opts).unwrap();
        daemon.storage_mut().fail_next_writes(u64::MAX);
        daemon.ingest(&observed()[..64]); // cadence hits, checkpoint fails
        assert_eq!(daemon.durability_stats().failed_checkpoints, 1);
        assert_eq!(daemon.stats().ingested, 64);
        assert!(matches!(
            daemon.checkpoint_now(),
            Err(DurabilityError::Io {
                op: "checkpoint.save",
                ..
            })
        ));
    }

    #[test]
    fn config_mismatch_is_rejected_with_both_fingerprints() {
        let opts = DurabilityOptions {
            sleeper: Box::new(|_| {}),
            ..DurabilityOptions::new(1)
        };
        let (mut daemon, _) =
            DurableDaemon::open(meter(), options(), MemStorage::new(), opts).unwrap();
        daemon.ingest(&observed()[..64]); // writes a checkpoint
        let storage = std::mem::take(daemon.storage_mut());
        drop(daemon);
        let other = BotMeter::new(BotMeterConfig::new(DgaFamily::new_goz()));
        let err = DurableDaemon::open(other, options(), storage, DurabilityOptions::default())
            .expect_err("fingerprints differ");
        match err {
            DurabilityError::ConfigMismatch { expected, found } => {
                assert!(expected.to_ascii_lowercase().contains("newgoz"));
                assert!(found.to_ascii_lowercase().contains("murofet"));
            }
            other => panic!("expected ConfigMismatch, got {other}"),
        }
    }
}
