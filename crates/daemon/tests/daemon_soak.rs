//! Soak: one hundred simulated epochs through the daemon, asserting the
//! three long-haul properties batch charting cannot give you — bounded
//! memory, exact deltas, and cheap publishes — without ever giving up
//! bit-identity to batch charting.

use botmeter_core::{BotMeter, BotMeterConfig, LandscapeVersion};
use botmeter_daemon::synthetic::{epoch_traffic, SoakLayout};
use botmeter_daemon::{BotMeterDaemon, DaemonOptions};
use botmeter_dga::DgaFamily;
use botmeter_dns::ObservedLookup;
use botmeter_exec::ExecPolicy;
use botmeter_obs::Obs;

const CLOSE_LAG: u64 = 1;

struct SoakRun {
    daemon: BotMeterDaemon,
    registry: std::sync::Arc<botmeter_obs::MetricsRegistry>,
    full: Vec<ObservedLookup>,
    family: DgaFamily,
    layout: SoakLayout,
}

fn start(family: DgaFamily, epochs: u64, layout: SoakLayout) -> SoakRun {
    let (obs, registry) = Obs::collecting();
    let meter = BotMeter::new(BotMeterConfig::new(family.clone()));
    let daemon = BotMeterDaemon::new(
        meter,
        DaemonOptions::new(0..epochs)
            .policy(ExecPolicy::Sequential)
            .close_lag(CLOSE_LAG)
            .retention(3)
            .auto_publish(false)
            .obs(obs),
    )
    .expect("valid options");
    SoakRun {
        daemon,
        registry,
        full: Vec::new(),
        family,
        layout,
    }
}

impl SoakRun {
    /// Ingests one epoch's synthetic traffic, publishes, and checks the
    /// per-epoch invariants: snapshot == batch chart over everything so
    /// far, and the adjacent delta round-trips.
    fn run_epoch(&mut self, epoch: u64) -> LandscapeVersion {
        let traffic = epoch_traffic(&self.family, epoch, self.layout);
        self.daemon.ingest(&traffic);
        self.full.extend(traffic);
        let version = self.daemon.publish_now();

        // (a) Bit-identical to a from-scratch chart over the same prefix.
        let (_, snapshot) = self.daemon.latest().expect("published");
        let reference = self.daemon.reference_chart(&self.full);
        assert_eq!(
            snapshot, &reference,
            "epoch {epoch}: snapshot != batch chart"
        );

        // (c) prev.apply(delta) == next, for the adjacent retained pair.
        if version.0 >= 2 {
            let prev = LandscapeVersion(version.0 - 1);
            let delta = self
                .daemon
                .store()
                .delta(prev, version)
                .expect("adjacent versions retained");
            let rebuilt = self
                .daemon
                .store()
                .at(prev)
                .expect("retained")
                .apply(&delta)
                .expect("delta applies to its own base");
            assert_eq!(
                &rebuilt,
                self.daemon.store().at(version).expect("retained"),
                "epoch {epoch}: delta round-trip diverged"
            );
            // An epoch of localized traffic only adds/re-estimates the
            // active servers' cells — never the whole landscape.
            assert!(
                delta.len() <= self.layout.active as usize + 1,
                "epoch {epoch}: delta touched {} cells",
                delta.len()
            );
        }
        version
    }
}

#[test]
fn hundred_epoch_soak_stays_flat_and_bit_identical() {
    const EPOCHS: u64 = 100;
    let layout = SoakLayout::default();
    let mut run = start(DgaFamily::murofet(), EPOCHS, layout);
    for epoch in 0..EPOCHS {
        run.run_epoch(epoch);
    }
    let stats = run.daemon.stats();
    assert_eq!(stats.publishes, EPOCHS);
    assert_eq!(
        stats.matched as usize,
        run.full.len(),
        "synthetic traffic all matches"
    );

    // (b) Flat memory: the peak stays within the close window's worth of
    // traffic — two orders of magnitude under "hold everything".
    let per_epoch = layout.records_per_epoch();
    let bound = per_epoch * (CLOSE_LAG as usize + 2);
    assert!(
        stats.peak_resident_records <= bound,
        "peak {} exceeds {bound} (per-epoch {per_epoch})",
        stats.peak_resident_records
    );
    assert!(
        stats.peak_resident_records * 10 <= run.full.len(),
        "residency not flat: peak {} vs {} ingested",
        stats.peak_resident_records,
        run.full.len()
    );
    // The obs gauge mirrors the engine's own high-water mark.
    let snap = run.registry.snapshot();
    assert_eq!(
        snap.counter("daemon.resident_records"),
        Some(stats.peak_resident_records as u64)
    );
    assert_eq!(snap.counter("daemon.publishes"), Some(EPOCHS));
    assert!(snap.histogram("daemon.rechart_ns").map(|h| h.count) == Some(EPOCHS));

    // (d) Incrementality: each publish re-estimated only that epoch's
    // active cells, so total re-estimations are linear in epochs while the
    // landscape itself grew to active × epochs cells.
    let expected_cells = layout.active as u64 * EPOCHS;
    assert_eq!(run.daemon.cell_count() as u64, expected_cells);
    assert_eq!(
        stats.cells_reestimated, expected_cells,
        "one estimate per cell, ever"
    );
    let full_rechart_cost: u64 = (1..=EPOCHS).map(|e| e * layout.active as u64).sum();
    assert!(stats.cells_reestimated * 10 < full_rechart_cost);
}

#[test]
fn bernoulli_soak_reuses_the_kernel_cache_across_publishes() {
    // newGoZ routes to the Bernoulli estimator, whose Theorem-1 segment
    // kernels are memoized in the daemon's long-lived estimation context:
    // later epochs re-hit shapes earlier epochs computed.
    const EPOCHS: u64 = 20;
    let layout = SoakLayout {
        servers: 4,
        active: 2,
        per_server: 5,
    };
    let mut run = start(DgaFamily::new_goz(), EPOCHS, layout);
    for epoch in 0..EPOCHS {
        run.run_epoch(epoch);
    }
    let snap = run.registry.snapshot();
    let hits = snap.counter("chart.kernel.memo_hits").unwrap_or(0);
    let misses = snap.counter("chart.kernel.memo_misses").unwrap_or(0);
    assert!(misses > 0, "kernels were computed");
    assert!(
        hits > misses,
        "cache persistence must turn repeat shapes into hits ({hits} hits / {misses} misses)"
    );
    let stats = run.daemon.stats();
    assert_eq!(stats.publishes, EPOCHS);
    assert_eq!(stats.stale_records, 0);
}
