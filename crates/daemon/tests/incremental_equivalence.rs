//! The daemon's headline contract: incremental charting is bit-identical
//! to from-scratch batch charting — for any epoch prefix, any execution
//! policy, with faults, detection windows and partial delivery in play.

use botmeter_core::{BotMeter, BotMeterConfig, ChartRequest, Landscape};
use botmeter_daemon::{BotMeterDaemon, DaemonOptions};
use botmeter_dga::DgaFamily;
use botmeter_dns::ObservedLookup;
use botmeter_exec::ExecPolicy;
use botmeter_faults::{FaultModel, FaultPlan};
use botmeter_sim::{PipelineMode, ScenarioOutcome, ScenarioSpec};
use std::collections::HashSet;

fn scenario(family: DgaFamily, epochs: u64, seed: u64, faulty: bool) -> ScenarioOutcome {
    let mut builder = ScenarioSpec::builder(family)
        .population(48)
        .num_epochs(epochs)
        .seed(seed);
    if faulty {
        builder = builder.faults(
            FaultPlan::new(5)
                .with(FaultModel::Drop { rate: 0.1 })
                .with(FaultModel::Reorder {
                    rate: 0.2,
                    max_displacement: 4,
                })
                .with(FaultModel::Duplicate { rate: 0.05 }),
        );
    }
    builder
        .build()
        .expect("valid scenario")
        .run(ExecPolicy::default())
}

fn batch(
    meter: &BotMeter,
    observed: &[ObservedLookup],
    epochs: u64,
    policy: ExecPolicy,
) -> Landscape {
    meter.chart_with(&ChartRequest::new(observed).epochs(0..epochs).policy(policy))
}

#[test]
fn streaming_daemon_equals_batch_chart_across_policies() {
    // Pin the worker count so parallel paths actually fan out on
    // single-core machines (same convention as the core pipeline tests).
    std::env::set_var("BOTMETER_THREADS", "4");
    const EPOCHS: u64 = 2;
    for faulty in [false, true] {
        let outcome = scenario(DgaFamily::new_goz(), EPOCHS, 19, faulty);
        let meter = BotMeter::new(BotMeterConfig::new(outcome.family().clone()));
        for policy in [
            ExecPolicy::Sequential,
            ExecPolicy::with_threads(2),
            ExecPolicy::with_threads(8),
        ] {
            let mut daemon =
                BotMeterDaemon::new(meter.clone(), DaemonOptions::new(0..EPOCHS).policy(policy))
                    .expect("valid options");
            // Feed the daemon through the streaming pipeline's ShardSink
            // seam — the exact ingest path botmeterd uses.
            let spec = ScenarioSpec::builder(outcome.family().clone())
                .population(48)
                .num_epochs(EPOCHS)
                .seed(19)
                .pipeline(PipelineMode::Streaming { shard: None });
            let spec = if faulty {
                spec.faults(
                    FaultPlan::new(5)
                        .with(FaultModel::Drop { rate: 0.1 })
                        .with(FaultModel::Reorder {
                            rate: 0.2,
                            max_displacement: 4,
                        })
                        .with(FaultModel::Duplicate { rate: 0.05 }),
                )
            } else {
                spec
            };
            let streamed = spec
                .build()
                .expect("valid scenario")
                .run_streaming_into(policy, &mut daemon);
            assert_eq!(
                streamed.observed(),
                outcome.observed(),
                "streaming changed the trace (faulty={faulty}, {policy:?})"
            );
            daemon.publish_now();
            let (_, snapshot) = daemon.latest().expect("published");
            let reference = batch(&meter, outcome.observed(), EPOCHS, policy);
            assert_eq!(
                snapshot, &reference,
                "incremental != batch (faulty={faulty}, {policy:?})"
            );
            if faulty {
                // The fault plan injects duplicates/reordering: both paths
                // must agree that the stream is degraded, not just on the
                // numbers.
                assert!(reference
                    .entries()
                    .iter()
                    .all(|e| e.quality != botmeter_core::CellQuality::Ok));
            }
        }
    }
}

#[test]
fn every_epoch_prefix_matches_batch_chart() {
    const EPOCHS: u64 = 3;
    let outcome = scenario(DgaFamily::murofet(), EPOCHS, 7, false);
    let meter = BotMeter::new(BotMeterConfig::new(outcome.family().clone()));
    let epoch_len = outcome.family().epoch_len();
    let mut daemon = BotMeterDaemon::new(
        meter.clone(),
        DaemonOptions::new(0..EPOCHS)
            .policy(ExecPolicy::Sequential)
            // Never freeze: this test replays arbitrary prefixes and wants
            // the pure incremental==batch contract with no stale carve-out.
            .close_lag(u64::MAX),
    )
    .expect("valid options");
    let observed = outcome.observed();
    let mut fed = 0usize;
    for epoch in 0..EPOCHS {
        let upto = observed
            .iter()
            .position(|l| l.t.epoch_day(epoch_len) > epoch)
            .unwrap_or(observed.len());
        if upto > fed {
            daemon.ingest(&observed[fed..upto]);
            fed = upto;
        }
        daemon.publish_now();
        let (_, snapshot) = daemon.latest().expect("published");
        let reference = batch(&meter, &observed[..fed], EPOCHS, ExecPolicy::Sequential);
        assert_eq!(
            snapshot, &reference,
            "prefix through epoch {epoch} diverged"
        );
    }
    assert_eq!(fed, observed.len(), "every record was fed");
}

#[test]
fn detection_window_and_delivery_rate_match_batch() {
    const EPOCHS: u64 = 2;
    let outcome = scenario(DgaFamily::new_goz(), EPOCHS, 23, false);
    let family = outcome.family().clone();
    // A window that knows only half of each epoch's pool.
    let window: HashSet<_> = (0..EPOCHS)
        .flat_map(|e| {
            let pool = family.pool_for_epoch(e);
            let half = pool.len() / 2;
            pool.into_iter().take(half)
        })
        .collect();
    let meter =
        BotMeter::new(BotMeterConfig::new(family).delivery_rate(0.5)).with_detection_window(window);
    let mut daemon = BotMeterDaemon::new(
        meter.clone(),
        DaemonOptions::new(0..EPOCHS).policy(ExecPolicy::Sequential),
    )
    .expect("valid options");
    for chunk in outcome.observed().chunks(113) {
        daemon.ingest(chunk);
    }
    daemon.publish_now();
    let (_, snapshot) = daemon.latest().expect("published");
    let reference = batch(&meter, outcome.observed(), EPOCHS, ExecPolicy::Sequential);
    assert_eq!(snapshot, &reference);
    assert!(!snapshot.is_empty());
    // Partial delivery marks every finite cell degraded in both paths.
    assert!(snapshot
        .entries()
        .iter()
        .all(|e| e.quality != botmeter_core::CellQuality::Ok));
}
