//! The durability contract, exhaustively: a daemon killed at **every**
//! ingest boundary and restarted must end bit-identical to an
//! uninterrupted run — across DGA families (both estimator routes) and
//! both execution policies — and a corrupted newest checkpoint must fall
//! back a generation and still converge.
//!
//! "Kill" here is in-process: the daemon is dropped without a shutdown
//! flush, exactly what `kill -9` leaves on storage (journal yes, final
//! checkpoint no). The process-level equivalent (real SIGKILL against the
//! real binary) lives in the `daemon_chaos` harness.

use botmeter_core::{BotMeter, BotMeterConfig};
use botmeter_daemon::{DaemonOptions, DurabilityOptions, DurableDaemon, MemStorage, Storage};
use botmeter_dga::DgaFamily;
use botmeter_dns::ObservedLookup;
use botmeter_exec::ExecPolicy;
use botmeter_sim::ScenarioSpec;

const EPOCHS: u64 = 2;

/// Cuts the stream into ~8 shards so the every-boundary sweep stays
/// affordable for the chatty families (newGoZ emits ~10k records here).
fn shards_of(observed: &[ObservedLookup]) -> Vec<&[ObservedLookup]> {
    observed.chunks(observed.len().div_ceil(8).max(1)).collect()
}

fn stream(family: &DgaFamily) -> Vec<ObservedLookup> {
    ScenarioSpec::builder(family.clone())
        .population(10)
        .num_epochs(EPOCHS)
        .seed(42)
        .build()
        .expect("valid scenario")
        .run(ExecPolicy::default())
        .observed()
        .to_vec()
}

fn meter(family: &DgaFamily) -> BotMeter {
    BotMeter::new(BotMeterConfig::new(family.clone()))
}

fn options(policy: &ExecPolicy) -> DaemonOptions {
    DaemonOptions::new(0..EPOCHS).policy(*policy).retention(4)
}

fn durability() -> DurabilityOptions {
    DurabilityOptions {
        checkpoint_every: 3,
        sleeper: Box::new(|_| {}),
        ..DurabilityOptions::default()
    }
}

/// Drives a daemon over `shards`, mirroring `botmeterd`'s end-of-input
/// rule: publish the trailing epoch only when unpublished work exists.
fn drive(daemon: &mut DurableDaemon<MemStorage>, shards: &[&[ObservedLookup]]) {
    for shard in shards {
        daemon.ingest(shard);
    }
    if daemon.engine().dirty_cells() > 0 || daemon.engine().store().is_empty() {
        daemon.publish_now();
    }
}

/// The engine's complete recoverable state, bit-exactly comparable: raw
/// estimates and published values travel as `f64::to_bits`.
fn fingerprint(daemon: &DurableDaemon<MemStorage>) -> String {
    let state = daemon.engine().checkpoint_state(0);
    serde_json::to_string(&state).expect("checkpoint state serializes")
}

fn matrix() -> Vec<(DgaFamily, ExecPolicy)> {
    let mut cases = Vec::new();
    for family in [DgaFamily::murofet(), DgaFamily::new_goz()] {
        for policy in [ExecPolicy::Sequential, ExecPolicy::with_threads(2)] {
            cases.push((family.clone(), policy));
        }
    }
    cases
}

#[test]
fn killed_at_every_ingest_boundary_recovers_bit_identical() {
    for (family, policy) in matrix() {
        let observed = stream(&family);
        let shards = shards_of(&observed);

        // Uninterrupted reference.
        let (mut reference, _) = DurableDaemon::open(
            meter(&family),
            options(&policy),
            MemStorage::new(),
            durability(),
        )
        .expect("fresh open");
        drive(&mut reference, &shards);
        let expected = fingerprint(&reference);

        for cut in 0..=shards.len() {
            // Run to the boundary, then vanish without a shutdown flush.
            let (mut victim, _) = DurableDaemon::open(
                meter(&family),
                options(&policy),
                MemStorage::new(),
                durability(),
            )
            .expect("fresh open");
            for shard in &shards[..cut] {
                victim.ingest(shard);
            }
            let survives = std::mem::take(victim.storage_mut());
            drop(victim); // kill -9

            // Restart from what storage holds, finish the stream.
            let (mut recovered, report) =
                DurableDaemon::open(meter(&family), options(&policy), survives, durability())
                    .expect("recovery");
            assert_eq!(
                report.ingested_records,
                shards[..cut].iter().map(|s| s.len() as u64).sum::<u64>(),
                "{} / {policy:?}: recovery must restore the exact ingest offset",
                family.name(),
            );
            drive(&mut recovered, &shards[cut..]);
            assert_eq!(
                fingerprint(&recovered),
                expected,
                "{} / {policy:?}: kill at boundary {cut}/{} diverged",
                family.name(),
                shards.len(),
            );
        }
    }
}

#[test]
fn corrupt_newest_checkpoint_falls_back_and_converges() {
    let family = DgaFamily::murofet();
    let policy = ExecPolicy::Sequential;
    let observed = stream(&family);
    let shards = shards_of(&observed);

    let (mut reference, _) = DurableDaemon::open(
        meter(&family),
        options(&policy),
        MemStorage::new(),
        durability(),
    )
    .expect("fresh open");
    drive(&mut reference, &shards);
    let expected = fingerprint(&reference);

    // Ingest far enough to retire two checkpoint generations, then die.
    let cut = shards.len() - 1;
    let (mut victim, _) = DurableDaemon::open(
        meter(&family),
        options(&policy),
        MemStorage::new(),
        durability(),
    )
    .expect("fresh open");
    for shard in &shards[..cut] {
        victim.ingest(shard);
    }
    let mut survives = std::mem::take(victim.storage_mut());
    drop(victim);

    // Flip one byte in the middle of the newest checkpoint.
    let mut names: Vec<String> = survives
        .list()
        .expect("list checkpoints")
        .into_iter()
        .filter(|n| n.starts_with("checkpoint."))
        .collect();
    names.sort();
    assert!(names.len() >= 2, "need two generations to test fallback");
    let newest = names.last().expect("nonempty").clone();
    let bytes = survives.get_mut(&newest).expect("stored checkpoint");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;

    let (mut recovered, report) =
        DurableDaemon::open(meter(&family), options(&policy), survives, durability())
            .expect("fallback recovery");
    assert_eq!(
        report.corrupt_checkpoints, 1,
        "the damaged generation must be detected and skipped"
    );
    assert!(
        report.replayed_frames > 0,
        "falling back a generation forces journal replay"
    );
    drive(&mut recovered, &shards[cut..]);
    assert_eq!(fingerprint(&recovered), expected, "fallback run diverged");
}

#[test]
fn all_checkpoints_corrupt_fails_loudly() {
    let family = DgaFamily::murofet();
    let policy = ExecPolicy::Sequential;
    let observed = stream(&family);
    let shards = shards_of(&observed);

    let (mut victim, _) = DurableDaemon::open(
        meter(&family),
        options(&policy),
        MemStorage::new(),
        durability(),
    )
    .expect("fresh open");
    for shard in &shards {
        victim.ingest(shard);
    }
    let mut survives = std::mem::take(victim.storage_mut());
    drop(victim);

    let names: Vec<String> = survives
        .list()
        .expect("list")
        .into_iter()
        .filter(|n| n.starts_with("checkpoint."))
        .collect();
    for name in names {
        let bytes = survives.get_mut(&name).expect("stored");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
    }
    let err = DurableDaemon::open(meter(&family), options(&policy), survives, durability())
        .expect_err("every generation is damaged");
    let msg = err.to_string();
    assert!(
        msg.contains("no stored checkpoint is readable"),
        "unexpected error: {msg}"
    );
}
