//! Property tests for the write-ahead-journal frame codec.
//!
//! Three properties carry the recovery contract:
//!
//! 1. any sequence of payloads round-trips exactly;
//! 2. truncating the file at *any* byte (a crash mid-append) recovers
//!    the longest prefix of complete frames — never an error, never a
//!    half-applied frame;
//! 3. flipping *any* single byte of an intact journal is detected — every
//!    byte of the format is covered by one of its CRCs, so corruption can
//!    never be mis-parsed as a torn tail or as different content.

use botmeter_daemon::wal::{decode, encode_frame, encode_header};
use proptest::prelude::*;

const HEADER_LEN: usize = 20;
const FRAME_HEADER_LEN: usize = 16;

/// Builds a journal file plus each frame's end offset within it.
fn build(base_seq: u64, payloads: &[Vec<u8>]) -> (Vec<u8>, Vec<usize>) {
    let mut file = encode_header(base_seq);
    let mut ends = Vec::with_capacity(payloads.len());
    for (i, payload) in payloads.iter().enumerate() {
        file.extend_from_slice(&encode_frame(base_seq + 1 + i as u64, payload));
        ends.push(file.len());
    }
    (file, ends)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Encode → decode is the identity on frames and finds no torn tail.
    #[test]
    fn random_payloads_round_trip(
        base_seq in 0u64..1_000_000,
        payloads in prop::collection::vec(
            prop::collection::vec(any::<u8>(), 0..200), 0..12),
    ) {
        let (file, _) = build(base_seq, &payloads);
        let contents = decode(&file).expect("intact journal decodes");
        prop_assert_eq!(contents.base_seq, base_seq);
        prop_assert_eq!(contents.torn_tail_bytes, 0);
        prop_assert_eq!(contents.frames.len(), payloads.len());
        for (i, frame) in contents.frames.iter().enumerate() {
            prop_assert_eq!(frame.seq, base_seq + 1 + i as u64);
            prop_assert_eq!(&frame.payload, &payloads[i]);
        }
    }

    /// Cutting the file anywhere at or past the header recovers exactly
    /// the frames that are complete in the prefix, and accounts for every
    /// trailing byte as torn. Cuts inside the header fail loudly instead.
    #[test]
    fn arbitrary_truncation_recovers_longest_valid_prefix(
        base_seq in 0u64..1_000_000,
        payloads in prop::collection::vec(
            prop::collection::vec(any::<u8>(), 0..64), 1..8),
        cut_raw in 0usize..1_000_000,
    ) {
        let (file, ends) = build(base_seq, &payloads);
        let cut = cut_raw % (file.len() + 1); // 0..=len
        let truncated = &file[..cut];
        if cut < HEADER_LEN {
            prop_assert!(decode(truncated).is_err(), "a journal without a full header is unreadable");
            return Ok(());
        }
        let contents = decode(truncated).expect("torn tails are not errors");
        let survivors = ends.iter().filter(|&&e| e <= cut).count();
        prop_assert_eq!(contents.frames.len(), survivors, "cut at {} of {}", cut, file.len());
        let last_end = if survivors == 0 { HEADER_LEN } else { ends[survivors - 1] };
        prop_assert_eq!(contents.torn_tail_bytes, cut - last_end);
        for (i, frame) in contents.frames.iter().enumerate() {
            prop_assert_eq!(&frame.payload, &payloads[i]);
        }
    }

    /// Any single corrupted byte anywhere in the file — header, frame
    /// header, payload, or checksum — makes decoding fail. It is never
    /// misread as a shorter journal or as different frame content.
    #[test]
    fn any_single_byte_corruption_is_detected(
        base_seq in 0u64..1_000_000,
        payloads in prop::collection::vec(
            prop::collection::vec(any::<u8>(), 0..64), 1..6),
        pos_raw in 0usize..1_000_000,
        mask_raw in 1u16..256,
    ) {
        let (file, _) = build(base_seq, &payloads);
        let pos = pos_raw % file.len();
        let mask = mask_raw as u8;
        let mut damaged = file.clone();
        damaged[pos] ^= mask;
        prop_assert!(
            decode(&damaged).is_err(),
            "flipping byte {} with mask {:#04x} went undetected", pos, mask
        );
    }

    /// Same guarantee inside the frame region specifically, one byte at a
    /// time over a whole small journal (exhaustive, not sampled).
    #[test]
    fn every_byte_of_a_small_journal_is_checksummed(
        payload in prop::collection::vec(any::<u8>(), 1..24),
    ) {
        let (file, _) = build(7, &[payload]);
        prop_assert!(file.len() >= HEADER_LEN + FRAME_HEADER_LEN);
        for pos in 0..file.len() {
            let mut damaged = file.clone();
            damaged[pos] ^= 0x01;
            prop_assert!(decode(&damaged).is_err(), "byte {} is unprotected", pos);
        }
    }
}
