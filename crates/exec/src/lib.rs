//! Deterministic parallel execution primitives for the BotMeter pipeline.
//!
//! Every parallel stage in the workspace — bot replay in `botmeter-sim`,
//! cache filtering in `botmeter-dns`, per-server estimation in
//! `botmeter-core`, trial sweeps in `botmeter-bench` — funnels through this
//! crate, so the threading policy lives in one place:
//!
//! * **One execution policy.** Since the sequential/parallel API
//!   unification, pipeline entry points take an [`ExecPolicy`]
//!   (`Sequential` or `Parallel { threads }`) instead of forking into
//!   `*_parallel` twins. [`ExecPolicy::default`] resolves the worker count
//!   from the `BOTMETER_THREADS` environment variable (see
//!   [`num_threads`]).
//! * **Self-scheduling, bounded dispatch.** Jobs are handed out through a
//!   single atomic counter (a "job dispenser"), not a pre-filled queue:
//!   memory for in-flight coordination is `O(workers)`, and an idle worker
//!   steals the next index the moment it finishes — the same load-balancing
//!   effect as a work-stealing deque for the independent-jobs shapes BotMeter
//!   has, with none of the queue allocation.
//! * **Determinism by index.** Workers write each job's result into its own
//!   slot, so outputs are returned in job order no matter which thread ran
//!   what. Callers keep the contract that job `i` is a pure function of `i`.
//! * **Observability.** The `*_with` entry points accept a
//!   [`botmeter_obs::Obs`] handle and report batch/task/steal counts and a
//!   queue-depth high-water mark under the scheduling-dependent `sched.`
//!   prefix (see `botmeter-obs` for why those counters are exempt from the
//!   sequential-vs-parallel determinism contract).
//!
//! ```
//! use botmeter_exec::ExecPolicy;
//! let squares = botmeter_exec::run_indexed(8, |i| i * i);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! // Same jobs, explicit policy and metrics:
//! let (obs, registry) = botmeter_obs::Obs::collecting();
//! let again = botmeter_exec::run_indexed_with(ExecPolicy::default(), &obs, 8, |i| i * i);
//! assert_eq!(again, squares);
//! assert_eq!(registry.snapshot().counter("sched.exec.tasks"), Some(8));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use botmeter_obs::Obs;
use std::collections::VecDeque;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, PoisonError};
use std::thread;

/// How a pipeline stage should execute: single-threaded, or fanned out
/// across a worker pool.
///
/// Every unified pipeline entry point (`ScenarioSpec::run`,
/// `Topology::process_trace`, `match_stream`, `BotMeter::chart`) takes one
/// of these; the former `*_parallel`/`run_sequential` twins are deprecated
/// shims over it. Both variants produce bit-identical pipeline results —
/// the policy only chooses how the work is scheduled.
///
/// # Example
///
/// ```
/// use botmeter_exec::ExecPolicy;
/// assert_eq!(ExecPolicy::Sequential.worker_threads(), 1);
/// assert_eq!(ExecPolicy::with_threads(4).worker_threads(), 4);
/// // The default resolves from BOTMETER_THREADS / available parallelism:
/// assert!(ExecPolicy::default().worker_threads() >= 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecPolicy {
    /// Run everything inline on the calling thread. This is also the
    /// reference behaviour the determinism tests compare against.
    Sequential,
    /// Fan out across worker threads. `threads: None` resolves the count
    /// at call time via [`num_threads`] (the `BOTMETER_THREADS`
    /// environment variable, falling back to the machine's available
    /// parallelism).
    Parallel {
        /// Explicit worker count; `None` means auto-detect.
        threads: Option<usize>,
    },
}

impl Default for ExecPolicy {
    /// Parallel with auto-detected worker count.
    fn default() -> Self {
        ExecPolicy::parallel()
    }
}

impl ExecPolicy {
    /// Parallel execution with the worker count resolved at call time.
    pub fn parallel() -> Self {
        ExecPolicy::Parallel { threads: None }
    }

    /// Parallel execution pinned to `threads` workers (clamped to ≥ 1;
    /// `1` behaves exactly like [`ExecPolicy::Sequential`]).
    pub fn with_threads(threads: usize) -> Self {
        ExecPolicy::Parallel {
            threads: Some(threads.max(1)),
        }
    }

    /// The number of worker threads this policy resolves to right now.
    pub fn worker_threads(self) -> usize {
        match self {
            ExecPolicy::Sequential => 1,
            ExecPolicy::Parallel { threads: Some(n) } => n.max(1),
            ExecPolicy::Parallel { threads: None } => num_threads(),
        }
    }

    /// Whether the policy resolves to inline, single-threaded execution.
    pub fn is_sequential(self) -> bool {
        self.worker_threads() <= 1
    }
}

/// The number of worker threads parallel stages use by default.
///
/// Set `BOTMETER_THREADS` to pin it (values below 1 are clamped to 1);
/// otherwise it is the machine's available parallelism.
pub fn num_threads() -> usize {
    if let Ok(v) = std::env::var("BOTMETER_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// A structured record of one job's panic, produced by
/// [`try_run_indexed_with`]: the batch keeps running, the pool stays
/// usable, and the panicking job surfaces as this error instead of
/// aborting the whole scope.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct TaskPanic {
    /// The index of the job that panicked.
    pub index: usize,
    /// The panic payload, when it was a string (the overwhelmingly common
    /// case); a placeholder otherwise.
    pub message: String,
}

impl fmt::Display for TaskPanic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job {} panicked: {}", self.index, self.message)
    }
}

impl std::error::Error for TaskPanic {}

/// Runs job `i` with per-task panic isolation.
fn catch_job<T, F: Fn(usize) -> T>(f: &F, i: usize) -> Result<T, TaskPanic> {
    catch_unwind(AssertUnwindSafe(|| f(i))).map_err(|payload| {
        let message = if let Some(s) = payload.downcast_ref::<&'static str>() {
            (*s).to_owned()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_owned()
        };
        TaskPanic { index: i, message }
    })
}

/// Runs `jobs` independent jobs of `f` (given the job index) with the
/// default policy and no metrics. See [`run_indexed_with`].
pub fn run_indexed<T, F>(jobs: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    run_indexed_with(ExecPolicy::default(), &Obs::noop(), jobs, f)
}

/// Runs `jobs` independent jobs of `f` (given the job index) under
/// `policy` and returns the results in index order.
///
/// Jobs must be deterministic functions of their index; scheduling order is
/// unobservable in the output. With one worker (or one job) everything runs
/// inline on the calling thread, which is also the sequential reference
/// behaviour the determinism tests compare against.
///
/// Scheduling metrics reported through `obs` (all under the `sched.`
/// prefix, so they are exempt from the determinism contract):
/// `sched.exec.batches`, `sched.exec.tasks`, `sched.exec.steals` (jobs a
/// worker took beyond its even share), `sched.exec.queue_high_water`
/// (the deepest dispatch queue any single batch presented) and
/// `sched.exec.panics` (jobs that panicked — see [`try_run_indexed_with`]).
///
/// # Panics
///
/// If any job panics. Unlike a bare `thread::scope`, the panic is
/// *contained* per task ([`try_run_indexed_with`] is the non-panicking
/// form): every other job still runs to completion and the pool winds down
/// cleanly before the first panicking job's error is re-raised here.
pub fn run_indexed_with<T, F>(policy: ExecPolicy, obs: &Obs, jobs: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let mut out = Vec::with_capacity(jobs);
    for result in try_run_indexed_with(policy, obs, jobs, f) {
        match result {
            Ok(value) => out.push(value),
            Err(panic) => panic!("{panic}"),
        }
    }
    out
}

/// [`run_indexed_with`] with per-task panic isolation: every job runs under
/// `catch_unwind`, so a panicking job yields `Err(TaskPanic)` in its slot
/// while the rest of the batch completes normally — no hang, no abort, and
/// the calling thread (and any surrounding pool) stays usable.
///
/// Results come back in job index order, one `Result` per job. Panic counts
/// are reported through `obs` as `sched.exec.panics`.
pub fn try_run_indexed_with<T, F>(
    policy: ExecPolicy,
    obs: &Obs,
    jobs: usize,
    f: F,
) -> Vec<Result<T, TaskPanic>>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if jobs == 0 {
        return Vec::new();
    }
    let workers = policy.worker_threads().min(jobs);
    obs.counter_add("sched.exec.batches", 1);
    obs.counter_add("sched.exec.tasks", jobs as u64);
    obs.gauge_max("sched.exec.queue_high_water", jobs as u64);
    let results: Vec<Result<T, TaskPanic>> = if workers <= 1 {
        (0..jobs).map(|i| catch_job(&f, i)).collect()
    } else {
        // Bounded coordination state: one atomic dispenser + one slot per
        // job. No job queue is materialised at all.
        let next_job = AtomicUsize::new(0);
        let steals = AtomicU64::new(0);
        let even_share = jobs / workers;
        let slots: Vec<Mutex<Option<Result<T, TaskPanic>>>> =
            (0..jobs).map(|_| Mutex::new(None)).collect();
        thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let mut taken = 0u64;
                    loop {
                        let i = next_job.fetch_add(1, Ordering::Relaxed);
                        if i >= jobs {
                            break;
                        }
                        taken += 1;
                        let value = catch_job(&f, i);
                        // catch_unwind already fenced the job, so the lock
                        // cannot be poisoned by `f`; recover defensively
                        // anyway instead of cascading a second panic.
                        *slots[i].lock().unwrap_or_else(PoisonError::into_inner) = Some(value);
                    }
                    // Anything beyond the even split is load the worker
                    // "stole" from slower peers through the dispenser.
                    let stolen = taken.saturating_sub(even_share as u64);
                    if stolen > 0 {
                        steals.fetch_add(stolen, Ordering::Relaxed);
                    }
                });
            }
        });
        obs.counter_add("sched.exec.steals", steals.into_inner());
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap_or_else(PoisonError::into_inner)
                    .expect("every job completed")
            })
            .collect()
    };
    let panics = results.iter().filter(|r| r.is_err()).count();
    if panics > 0 {
        obs.counter_add("sched.exec.panics", panics as u64);
    }
    results
}

/// [`map_chunks_with`] under the default policy with no metrics.
pub fn map_chunks<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> R + Sync,
{
    map_chunks_with(ExecPolicy::default(), &Obs::noop(), items, f)
}

/// Splits `items` into at most [`ExecPolicy::worker_threads`] contiguous
/// chunks of near-equal length and maps `f` over them under `policy`,
/// returning one result per chunk in chunk order. Empty input yields no
/// chunks.
///
/// `f` receives `(chunk_index, chunk_slice)`.
pub fn map_chunks_with<T, R, F>(policy: ExecPolicy, obs: &Obs, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> R + Sync,
{
    let bounds = chunk_bounds(items.len(), policy.worker_threads());
    run_indexed_with(policy, obs, bounds.len(), |i| {
        let (start, end) = bounds[i];
        f(i, &items[start..end])
    })
}

/// Computes `chunks` near-equal `(start, end)` ranges covering `0..len`
/// (fewer when `len < chunks`; none when `len == 0`).
pub fn chunk_bounds(len: usize, chunks: usize) -> Vec<(usize, usize)> {
    if len == 0 || chunks == 0 {
        return Vec::new();
    }
    let chunks = chunks.min(len);
    let base = len / chunks;
    let extra = len % chunks;
    let mut bounds = Vec::with_capacity(chunks);
    let mut start = 0;
    for i in 0..chunks {
        let size = base + usize::from(i < extra);
        bounds.push((start, start + size));
        start += size;
    }
    bounds
}

/// [`par_sort_by_key_with`] under the default policy with no metrics.
pub fn par_sort_by_key<T, K, F>(items: &mut Vec<T>, key: F)
where
    T: Send,
    K: Ord,
    F: Fn(&T) -> K + Sync,
{
    par_sort_by_key_with(ExecPolicy::default(), &Obs::noop(), items, key)
}

/// Stable parallel sort by key: chunk-sorts in parallel, then merges
/// adjacent runs pairwise (also in parallel) until one run remains.
///
/// Produces exactly the same ordering as `slice::sort_by_key` (which is
/// stable), so sequential and parallel pipelines agree bit-for-bit even when
/// keys collide.
pub fn par_sort_by_key_with<T, K, F>(policy: ExecPolicy, obs: &Obs, items: &mut Vec<T>, key: F)
where
    T: Send,
    K: Ord,
    F: Fn(&T) -> K + Sync,
{
    let workers = policy.worker_threads();
    if workers <= 1 || items.len() < 2 {
        items.sort_by_key(key);
        return;
    }

    // Phase 1: split into contiguous chunks and sort each independently
    // (stable) in parallel.
    let bounds = chunk_bounds(items.len(), workers);
    let mut remaining = std::mem::take(items);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(bounds.len());
    for &(start, _) in bounds.iter().rev() {
        chunks.push(remaining.split_off(start));
    }
    chunks.reverse();
    let chunk_slots: Vec<Mutex<Option<Vec<T>>>> =
        chunks.into_iter().map(|c| Mutex::new(Some(c))).collect();
    let sorted: Vec<Vec<T>> = run_indexed_with(policy, obs, chunk_slots.len(), |i| {
        let mut chunk = chunk_slots[i]
            .lock()
            .expect("chunk slot poisoned")
            .take()
            .expect("chunk present");
        chunk.sort_by_key(&key);
        chunk
    });

    // Phase 2: pairwise stable merges until a single run remains. Merging
    // adjacent runs left-to-right (ties favour the left run) reproduces the
    // stable global order.
    let mut runs = sorted;
    while runs.len() > 1 {
        let pair_count = runs.len() / 2;
        let has_tail = runs.len() % 2 == 1;
        let tail = if has_tail { runs.pop() } else { None };
        type MergePair<T> = Mutex<Option<(Vec<T>, Vec<T>)>>;
        let slots: Vec<MergePair<T>> = {
            let mut pairs = Vec::with_capacity(pair_count);
            let mut iter = runs.drain(..);
            while let (Some(a), Some(b)) = (iter.next(), iter.next()) {
                pairs.push(Mutex::new(Some((a, b))));
            }
            pairs
        };
        let mut merged: Vec<Vec<T>> = run_indexed_with(policy, obs, slots.len(), |i| {
            let (a, b) = slots[i]
                .lock()
                .expect("merge slot poisoned")
                .take()
                .expect("pair present");
            merge_stable(a, b, &key)
        });
        if let Some(t) = tail {
            merged.push(t);
        }
        runs = merged;
    }
    *items = runs.pop().unwrap_or_default();
}

/// What the staged runner shares between the producer thread and the
/// consuming caller: a bounded in-order queue plus wake-up signals for
/// both sides.
struct StageChannel<T> {
    queue: Mutex<StageQueue<T>>,
    /// Signalled when an item lands (or the producer finishes).
    ready: Condvar,
    /// Signalled when the consumer frees a slot (or aborts).
    space: Condvar,
}

struct StageQueue<T> {
    items: VecDeque<(usize, T)>,
    /// The producer finished (normally or by panic).
    done: bool,
    /// The consumer died; the producer should stop generating.
    aborted: bool,
    /// Items whose hand-off had to wait for a free slot.
    stalls: u64,
    /// Deepest the queue ever got.
    high_water: u64,
}

/// Marks the channel done (and wakes the consumer) when the producer
/// exits — *including* by panic, so the consumer never waits forever.
struct ProducerDoneGuard<'a, T>(&'a StageChannel<T>);

impl<T> Drop for ProducerDoneGuard<'_, T> {
    fn drop(&mut self) {
        let mut q = self.0.queue.lock().unwrap_or_else(PoisonError::into_inner);
        q.done = true;
        drop(q);
        self.0.ready.notify_all();
    }
}

/// Runs a two-stage produce→consume pipeline over `jobs` indexed items
/// with a bounded hand-off buffer: stage N+1 of the pipeline is generated
/// while stage N is still being consumed, but never more than `capacity`
/// finished items sit in memory at once.
///
/// `produce(i)` builds item `i`; `consume(i, item)` receives the items
/// **strictly in index order** under every policy. Sequentially the two
/// closures simply alternate on the calling thread; under a parallel
/// policy `produce` runs on one background thread while `consume` runs on
/// the calling thread, overlapping the stages. Because items are produced
/// and consumed in index order either way, anything deterministic about a
/// sequential run stays deterministic under overlap — only the *timing*
/// changes, which is why this runner's metrics live under the
/// scheduling-dependent `sched.` prefix: `sched.stream.batches`,
/// `sched.stream.items`, `sched.stream.queue_high_water` and
/// `sched.stream.backpressure_stalls` (hand-offs that blocked on a full
/// buffer).
///
/// `capacity` is clamped to ≥ 1. A panic in either closure tears the
/// pipeline down cleanly — the other side stops promptly instead of
/// deadlocking on the buffer — and resurfaces on the calling thread.
pub fn run_staged_with<T, P, C>(
    policy: ExecPolicy,
    obs: &Obs,
    jobs: usize,
    capacity: usize,
    mut produce: P,
    mut consume: C,
) where
    T: Send,
    P: FnMut(usize) -> T + Send,
    C: FnMut(usize, T),
{
    obs.counter_add("sched.stream.batches", 1);
    obs.counter_add("sched.stream.items", jobs as u64);
    if jobs == 0 {
        return;
    }
    if policy.is_sequential() {
        for i in 0..jobs {
            let item = produce(i);
            consume(i, item);
        }
        return;
    }
    let capacity = capacity.max(1);
    let channel = StageChannel {
        queue: Mutex::new(StageQueue {
            items: VecDeque::with_capacity(capacity),
            done: false,
            aborted: false,
            stalls: 0,
            high_water: 0,
        }),
        ready: Condvar::new(),
        space: Condvar::new(),
    };
    let consumer_outcome = thread::scope(|scope| {
        scope.spawn(|| {
            let _done = ProducerDoneGuard(&channel);
            for i in 0..jobs {
                // Build outside the lock so the consumer drains freely.
                let item = produce(i);
                let mut q = channel.queue.lock().unwrap_or_else(PoisonError::into_inner);
                let mut waited = false;
                while q.items.len() >= capacity && !q.aborted {
                    if !waited {
                        q.stalls += 1;
                        waited = true;
                    }
                    q = channel
                        .space
                        .wait(q)
                        .unwrap_or_else(PoisonError::into_inner);
                }
                if q.aborted {
                    return;
                }
                q.items.push_back((i, item));
                q.high_water = q.high_water.max(q.items.len() as u64);
                drop(q);
                channel.ready.notify_all();
            }
        });
        let outcome = catch_unwind(AssertUnwindSafe(|| loop {
            let mut q = channel.queue.lock().unwrap_or_else(PoisonError::into_inner);
            let next = loop {
                if let Some(next) = q.items.pop_front() {
                    break Some(next);
                }
                if q.done {
                    break None;
                }
                q = channel
                    .ready
                    .wait(q)
                    .unwrap_or_else(PoisonError::into_inner);
            };
            drop(q);
            channel.space.notify_all();
            match next {
                Some((i, item)) => consume(i, item),
                None => return,
            }
        }));
        if outcome.is_err() {
            // Unblock a producer stuck on a full buffer so the scope can
            // wind down instead of deadlocking.
            let mut q = channel.queue.lock().unwrap_or_else(PoisonError::into_inner);
            q.aborted = true;
            drop(q);
            channel.space.notify_all();
        }
        outcome
        // A producer panic propagates here when the scope joins it.
    });
    let q = channel
        .queue
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner);
    obs.counter_add("sched.stream.backpressure_stalls", q.stalls);
    obs.gauge_max("sched.stream.queue_high_water", q.high_water);
    if let Err(payload) = consumer_outcome {
        std::panic::resume_unwind(payload);
    }
}

/// How many items beyond the consumer's cursor the multi-producer runner
/// ([`run_pipelined_with`]) may claim at once. Fixed (not derived from the
/// worker count) so anything accounted against the window — the streaming
/// pipeline's deterministic residency bound — is identical under every
/// [`ExecPolicy`]. Worker counts above this see no extra producer
/// parallelism; today's pools (≤ 16 threads typical) fit inside it.
pub const PIPELINE_WINDOW: usize = 8;

/// Shared state of the multi-producer runner: claimed tickets, finished
/// items waiting for their turn, and the consumer's cursor.
struct PipeState<T> {
    /// Next item index a producer may claim.
    next_ticket: usize,
    /// Next item index the consumer will accept.
    next_consume: usize,
    /// Finished items that arrived ahead of the consumer, keyed by index.
    ready: std::collections::BTreeMap<usize, T>,
    /// Producer threads still running (normally or not).
    producers_alive: usize,
    /// The consumer died; producers should stop claiming tickets.
    aborted: bool,
    /// Ticket claims that had to wait for the window to advance.
    stalls: u64,
    /// Deepest the ready buffer ever got.
    high_water: u64,
}

struct PipeChannel<T> {
    state: Mutex<PipeState<T>>,
    /// Signalled when an item lands in `ready` or a producer exits.
    ready: Condvar,
    /// Signalled when the consumer advances (or aborts).
    advanced: Condvar,
}

/// Decrements the live-producer count (and wakes the consumer) when a
/// producer thread exits — *including* by panic. A panicking producer may
/// have claimed a ticket it will never deliver, which would strand the
/// consumer on `ready` and its peers on the full window, so the panic path
/// additionally aborts the whole pipeline and wakes both sides; the
/// payload then resurfaces when the scope joins the dead thread.
struct ProducerExitGuard<'a, T>(&'a PipeChannel<T>);

impl<T> Drop for ProducerExitGuard<'_, T> {
    fn drop(&mut self) {
        let mut s = self.0.state.lock().unwrap_or_else(PoisonError::into_inner);
        s.producers_alive -= 1;
        if thread::panicking() {
            s.aborted = true;
        }
        drop(s);
        self.0.ready.notify_all();
        self.0.advanced.notify_all();
    }
}

/// Runs an indexed produce→consume pipeline with **multiple producer
/// workers**: up to [`ExecPolicy::worker_threads`] threads build items
/// concurrently while the calling thread consumes them **strictly in index
/// order**.
///
/// This is the fan-out form of [`run_staged_with`]: where the staged runner
/// pins production to one background thread, this one hands item indices to
/// a pool of producers through a ticket window — a producer may claim index
/// `i` only once `i < consumed + `[`PIPELINE_WINDOW`], so at most
/// `PIPELINE_WINDOW` items are in flight (being built or buffered) beyond
/// the consumer's cursor at any moment. The window is a fixed constant
/// rather than a function of the worker count, so any memory accounting a
/// caller derives from it is identical under every policy — the streaming
/// pipeline's deterministic residency bound depends on exactly that.
///
/// `produce` must be a pure function of the index (it runs concurrently on
/// several threads); `consume` runs only on the calling thread, so it may
/// freely mutate carried state — cache topologies, fault streams,
/// accumulators — exactly like the single-producer staged runner.
///
/// Sequential policies alternate the two closures inline, which is also the
/// reference behaviour the determinism suites compare against. Metrics
/// (scheduling-dependent, `sched.` prefix): `sched.stream.batches`,
/// `sched.stream.items`, `sched.stream.producer_workers` (threads the
/// parallel path actually spawned), `sched.stream.queue_high_water` and
/// `sched.stream.backpressure_stalls` (ticket claims that blocked on the
/// window).
///
/// # Panics
///
/// A panic in `produce` or `consume` tears the pipeline down cleanly (no
/// deadlock on the window) and resurfaces on the calling thread.
pub fn run_pipelined_with<T, P, C>(
    policy: ExecPolicy,
    obs: &Obs,
    jobs: usize,
    produce: P,
    mut consume: C,
) where
    T: Send,
    P: Fn(usize) -> T + Sync,
    C: FnMut(usize, T),
{
    obs.counter_add("sched.stream.batches", 1);
    obs.counter_add("sched.stream.items", jobs as u64);
    if jobs == 0 {
        return;
    }
    if policy.is_sequential() {
        for i in 0..jobs {
            let item = produce(i);
            consume(i, item);
        }
        return;
    }
    let workers = policy.worker_threads().min(jobs).min(PIPELINE_WINDOW);
    obs.gauge_max("sched.stream.producer_workers", workers as u64);
    let channel = PipeChannel {
        state: Mutex::new(PipeState {
            next_ticket: 0,
            next_consume: 0,
            ready: std::collections::BTreeMap::new(),
            producers_alive: workers,
            aborted: false,
            stalls: 0,
            high_water: 0,
        }),
        ready: Condvar::new(),
        advanced: Condvar::new(),
    };
    let consumer_outcome = thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let _exit = ProducerExitGuard(&channel);
                loop {
                    // Claim the next ticket once it enters the window.
                    let i = {
                        let mut s = channel.state.lock().unwrap_or_else(PoisonError::into_inner);
                        let mut waited = false;
                        loop {
                            if s.aborted || s.next_ticket >= jobs {
                                return;
                            }
                            if s.next_ticket < s.next_consume + PIPELINE_WINDOW {
                                break;
                            }
                            if !waited {
                                s.stalls += 1;
                                waited = true;
                            }
                            s = channel
                                .advanced
                                .wait(s)
                                .unwrap_or_else(PoisonError::into_inner);
                        }
                        s.next_ticket += 1;
                        s.next_ticket - 1
                    };
                    // Build outside the lock so peers claim and the
                    // consumer drains freely.
                    let item = produce(i);
                    let mut s = channel.state.lock().unwrap_or_else(PoisonError::into_inner);
                    if s.aborted {
                        return;
                    }
                    s.ready.insert(i, item);
                    s.high_water = s.high_water.max(s.ready.len() as u64);
                    drop(s);
                    channel.ready.notify_all();
                }
            });
        }
        let outcome = catch_unwind(AssertUnwindSafe(|| loop {
            let next = {
                let mut s = channel.state.lock().unwrap_or_else(PoisonError::into_inner);
                loop {
                    if s.aborted {
                        // A producer panicked; its ticket will never be
                        // delivered. The payload resurfaces at scope join.
                        return;
                    }
                    if s.next_consume >= jobs {
                        return;
                    }
                    let turn = s.next_consume;
                    if let Some(item) = s.ready.remove(&turn) {
                        s.next_consume += 1;
                        break (turn, item);
                    }
                    if s.producers_alive == 0 {
                        // A producer died before building this item; the
                        // panic resurfaces when the scope joins.
                        return;
                    }
                    s = channel
                        .ready
                        .wait(s)
                        .unwrap_or_else(PoisonError::into_inner);
                }
            };
            channel.advanced.notify_all();
            consume(next.0, next.1);
        }));
        if outcome.is_err() {
            // Unblock producers stuck on the window so the scope can wind
            // down instead of deadlocking.
            let mut s = channel.state.lock().unwrap_or_else(PoisonError::into_inner);
            s.aborted = true;
            drop(s);
            channel.advanced.notify_all();
        }
        outcome
        // A producer panic propagates here when the scope joins it.
    });
    let s = channel
        .state
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner);
    obs.counter_add("sched.stream.backpressure_stalls", s.stalls);
    obs.gauge_max("sched.stream.queue_high_water", s.high_water);
    if let Err(payload) = consumer_outcome {
        std::panic::resume_unwind(payload);
    }
}

/// Stable merge of already-sorted runs: equivalent to stably sorting the
/// concatenation of `runs` in order, assuming each run is itself a stable
/// sort of its source segment. Ties always take the earliest run's element
/// first, so run order carries the same tie-breaking weight concatenation
/// order would.
///
/// This is the reduction step of the sharded streaming pipeline: per-range
/// producers pre-sort their partitions, and the consumer merges them in
/// job-range order to reproduce exactly the global stable sort.
pub fn merge_sorted_runs<T, K, F>(runs: Vec<Vec<T>>, key: F) -> Vec<T>
where
    K: Ord,
    F: Fn(&T) -> K,
{
    let mut merged: Option<Vec<T>> = None;
    for run in runs {
        if run.is_empty() {
            continue;
        }
        merged = Some(match merged {
            None => run,
            Some(acc) => merge_stable(acc, run, &key),
        });
    }
    merged.unwrap_or_default()
}

/// Stable k-way merge of already-sorted runs into a caller-owned buffer,
/// for `Copy` elements: equivalent to [`merge_sorted_runs`] on the same
/// runs (ties take the earliest run's element first), but records are
/// copied straight into `out` — no intermediate runs are allocated, so a
/// consumer recycling `out` through a [`BufferPool`] merges shards without
/// steady-state heap traffic.
///
/// `out` is appended to, not cleared.
pub fn merge_sorted_runs_into<T, K, F>(runs: &[Vec<T>], key: F, out: &mut Vec<T>)
where
    T: Copy,
    K: Ord,
    F: Fn(&T) -> K,
{
    out.reserve(runs.iter().map(Vec::len).sum());
    let mut cursors = vec![0usize; runs.len()];
    loop {
        // Scan for the smallest head; ties favour the earliest run, which
        // reproduces the pairwise left-biased merge order exactly.
        let mut best: Option<(usize, K)> = None;
        for (r, run) in runs.iter().enumerate() {
            if let Some(item) = run.get(cursors[r]) {
                let k = key(item);
                match &best {
                    Some((_, bk)) if *bk <= k => {}
                    _ => best = Some((r, k)),
                }
            }
        }
        match best {
            Some((r, _)) => {
                out.push(runs[r][cursors[r]]);
                cursors[r] += 1;
            }
            None => return,
        }
    }
}

/// A bounded freelist of reusable `Vec<T>` buffers.
///
/// The streaming pipeline's producers fill one buffer per shard and the
/// consumer hands each buffer back after draining it; with the pool sized
/// to the pipeline window, steady-state shard production reuses the same
/// few allocations for the whole run instead of allocating and freeing one
/// `Vec` per shard. Buffers keep their capacity across recycles (they are
/// cleared, not shrunk), so after warm-up `acquire` is a pop and `recycle`
/// a push.
///
/// All methods take `&self`; the freelist is behind a mutex and the
/// counters are relaxed atomics, so producers and the consumer share one
/// pool. Metrics (scheduling-dependent, `sched.` prefix, therefore exempt
/// from the determinism contract): `sched.pool.acquires`,
/// `sched.pool.fresh_allocs` (acquires the freelist could not serve),
/// `sched.pool.recycled`, `sched.pool.dropped` (recycles beyond the bound)
/// and the `sched.pool.high_water` gauge (most buffers ever outstanding at
/// once).
///
/// # Example
///
/// ```
/// use botmeter_exec::BufferPool;
/// let pool: BufferPool<u64> = BufferPool::new(4);
/// let mut buf = pool.acquire();
/// buf.extend([1, 2, 3]);
/// pool.recycle(buf);
/// let again = pool.acquire();
/// assert!(again.is_empty() && again.capacity() >= 3);
/// ```
#[derive(Debug)]
pub struct BufferPool<T> {
    free: Mutex<Vec<Vec<T>>>,
    max_pooled: usize,
    acquires: AtomicU64,
    fresh_allocs: AtomicU64,
    recycled: AtomicU64,
    dropped: AtomicU64,
    outstanding: AtomicU64,
    high_water: AtomicU64,
}

impl<T> BufferPool<T> {
    /// Creates a pool retaining at most `max_pooled` idle buffers
    /// (clamped to ≥ 1). Recycles beyond the bound drop the buffer, so the
    /// pool can never hoard more memory than its high-water working set.
    pub fn new(max_pooled: usize) -> Self {
        BufferPool {
            free: Mutex::new(Vec::with_capacity(max_pooled.max(1))),
            max_pooled: max_pooled.max(1),
            acquires: AtomicU64::new(0),
            fresh_allocs: AtomicU64::new(0),
            recycled: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            outstanding: AtomicU64::new(0),
            high_water: AtomicU64::new(0),
        }
    }

    /// Takes an empty buffer from the freelist, or allocates a fresh one
    /// when the pool is dry (counted as `sched.pool.fresh_allocs`).
    pub fn acquire(&self) -> Vec<T> {
        self.acquires.fetch_add(1, Ordering::Relaxed);
        let now = 1 + self.outstanding.fetch_add(1, Ordering::Relaxed);
        self.high_water.fetch_max(now, Ordering::Relaxed);
        let pooled = self
            .free
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pop();
        pooled.unwrap_or_else(|| {
            self.fresh_allocs.fetch_add(1, Ordering::Relaxed);
            Vec::new()
        })
    }

    /// Clears `buf` (keeping its capacity) and returns it to the freelist;
    /// buffers beyond the retention bound are dropped instead.
    pub fn recycle(&self, mut buf: Vec<T>) {
        // Saturating: recycling a buffer that was never acquired from this
        // pool (e.g. seeded by the caller) must not underflow.
        let _ = self
            .outstanding
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| {
                Some(n.saturating_sub(1))
            });
        buf.clear();
        let mut free = self.free.lock().unwrap_or_else(PoisonError::into_inner);
        if free.len() < self.max_pooled {
            free.push(buf);
            drop(free);
            self.recycled.fetch_add(1, Ordering::Relaxed);
        } else {
            drop(free);
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Number of idle buffers currently pooled.
    pub fn idle(&self) -> usize {
        self.free
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// The most buffers ever outstanding (acquired, not yet recycled) at
    /// one moment.
    pub fn high_water(&self) -> u64 {
        self.high_water.load(Ordering::Relaxed)
    }

    /// Pushes the pool's lifetime counters through `obs` under the
    /// scheduling-dependent `sched.pool.` prefix.
    pub fn record_metrics(&self, obs: &Obs) {
        obs.counter_add("sched.pool.acquires", self.acquires.load(Ordering::Relaxed));
        obs.counter_add(
            "sched.pool.fresh_allocs",
            self.fresh_allocs.load(Ordering::Relaxed),
        );
        obs.counter_add("sched.pool.recycled", self.recycled.load(Ordering::Relaxed));
        obs.counter_add("sched.pool.dropped", self.dropped.load(Ordering::Relaxed));
        obs.gauge_max("sched.pool.high_water", self.high_water());
    }
}

/// Stable two-run merge: ties take the left element first.
fn merge_stable<T, K: Ord, F: Fn(&T) -> K>(a: Vec<T>, b: Vec<T>, key: &F) -> Vec<T> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let mut ai = a.into_iter().peekable();
    let mut bi = b.into_iter().peekable();
    loop {
        match (ai.peek(), bi.peek()) {
            (Some(x), Some(y)) => {
                if key(x) <= key(y) {
                    out.push(ai.next().expect("peeked"));
                } else {
                    out.push(bi.next().expect("peeked"));
                }
            }
            (Some(_), None) => {
                out.extend(ai);
                break;
            }
            (None, _) => {
                out.extend(bi);
                break;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_indexed_ordered_and_complete() {
        let xs = run_indexed(100, |i| i * i);
        assert_eq!(xs.len(), 100);
        for (i, &v) in xs.iter().enumerate() {
            assert_eq!(v, i * i);
        }
    }

    #[test]
    fn run_indexed_zero_jobs() {
        assert!(run_indexed(0, |i| i).is_empty());
    }

    #[test]
    fn policy_resolution() {
        assert_eq!(ExecPolicy::Sequential.worker_threads(), 1);
        assert!(ExecPolicy::Sequential.is_sequential());
        assert_eq!(ExecPolicy::with_threads(0).worker_threads(), 1);
        assert_eq!(ExecPolicy::with_threads(6).worker_threads(), 6);
        assert!(!ExecPolicy::with_threads(6).is_sequential());
        assert!(ExecPolicy::parallel().worker_threads() >= 1);
    }

    #[test]
    fn sequential_policy_matches_parallel_results() {
        let seq = run_indexed_with(ExecPolicy::Sequential, &Obs::noop(), 64, |i| i * 3);
        let par = run_indexed_with(ExecPolicy::with_threads(4), &Obs::noop(), 64, |i| i * 3);
        assert_eq!(seq, par);
    }

    #[test]
    fn scheduling_metrics_are_reported() {
        let (obs, registry) = botmeter_obs::Obs::collecting();
        let out = run_indexed_with(ExecPolicy::with_threads(4), &obs, 32, |i| i);
        assert_eq!(out.len(), 32);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("sched.exec.batches"), Some(1));
        assert_eq!(snap.counter("sched.exec.tasks"), Some(32));
        assert_eq!(snap.counter("sched.exec.queue_high_water"), Some(32));
        // Steal counts are scheduling-dependent; they exist but are
        // excluded from the deterministic set.
        assert!(snap
            .deterministic_counters()
            .iter()
            .all(|c| !c.name.starts_with("sched.")));
    }

    /// Runs `f` with the default panic hook silenced, so deliberately
    /// panicking jobs do not spray backtraces over the test output.
    fn with_silent_panics<R>(f: impl FnOnce() -> R) -> R {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let out = f();
        std::panic::set_hook(prev);
        out
    }

    #[test]
    fn one_panicking_task_in_a_thousand_fails_alone() {
        with_silent_panics(|| {
            let (obs, registry) = botmeter_obs::Obs::collecting();
            let results = try_run_indexed_with(ExecPolicy::with_threads(4), &obs, 1000, |i| {
                if i == 357 {
                    panic!("boom at {i}");
                }
                i * 2
            });
            assert_eq!(results.len(), 1000, "no job may be lost");
            for (i, r) in results.iter().enumerate() {
                if i == 357 {
                    let e = r.as_ref().unwrap_err();
                    assert_eq!(e.index, 357);
                    assert!(e.message.contains("boom at 357"), "{e}");
                    assert!(e.to_string().contains("job 357 panicked"));
                } else {
                    assert_eq!(*r.as_ref().unwrap(), i * 2, "job {i} must complete");
                }
            }
            assert_eq!(registry.snapshot().counter("sched.exec.panics"), Some(1));
            // The pool stays usable: the very next batch runs clean.
            let again = run_indexed_with(ExecPolicy::with_threads(4), &obs, 64, |i| i + 1);
            assert_eq!(again.len(), 64);
            assert_eq!(again[63], 64);
        });
    }

    #[test]
    fn sequential_policy_isolates_panics_too() {
        with_silent_panics(|| {
            let results = try_run_indexed_with(ExecPolicy::Sequential, &Obs::noop(), 5, |i| {
                if i == 2 {
                    panic!("odd one out");
                }
                i
            });
            assert!(results[2].is_err());
            assert_eq!(results.iter().filter(|r| r.is_ok()).count(), 4);
        });
    }

    #[test]
    fn run_indexed_repanics_after_batch_completes() {
        with_silent_panics(|| {
            let completed = AtomicUsize::new(0);
            let caught = catch_unwind(AssertUnwindSafe(|| {
                run_indexed_with(ExecPolicy::with_threads(4), &Obs::noop(), 32, |i| {
                    if i == 3 {
                        panic!("resurfaced");
                    }
                    completed.fetch_add(1, Ordering::Relaxed);
                    i
                })
            }));
            let err = caught.expect_err("panic must resurface");
            let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
            assert!(msg.contains("job 3 panicked"), "{msg}");
            assert!(msg.contains("resurfaced"), "{msg}");
            // Isolation means the remaining 31 jobs all ran to completion
            // before the panic was re-raised.
            assert_eq!(completed.load(Ordering::Relaxed), 31);
        });
    }

    #[test]
    fn non_string_panic_payloads_are_reported() {
        with_silent_panics(|| {
            let results = try_run_indexed_with(ExecPolicy::Sequential, &Obs::noop(), 1, |_| {
                std::panic::panic_any(42_u32);
            });
            let e = results[0].as_ref().unwrap_err();
            assert_eq!(e.message, "non-string panic payload");
        });
    }

    #[test]
    fn chunk_bounds_cover_everything() {
        for len in [0usize, 1, 2, 7, 100, 101] {
            for chunks in [1usize, 2, 3, 8, 200] {
                let bounds = chunk_bounds(len, chunks);
                let total: usize = bounds.iter().map(|(s, e)| e - s).sum();
                assert_eq!(total, len);
                let mut cursor = 0;
                for &(s, e) in &bounds {
                    assert_eq!(s, cursor);
                    assert!(e > s);
                    cursor = e;
                }
            }
        }
    }

    #[test]
    fn map_chunks_preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let sums = map_chunks(&items, |_, chunk| chunk.iter().sum::<u64>());
        assert_eq!(sums.iter().sum::<u64>(), items.iter().sum::<u64>());
    }

    #[test]
    fn par_sort_matches_sequential_stable_sort() {
        // Many duplicate keys so stability is observable through the payload.
        let mut a: Vec<(u32, usize)> = (0..5000)
            .map(|i| ((i as u32).wrapping_mul(2654435761) % 17, i))
            .collect();
        let mut b = a.clone();
        a.sort_by_key(|&(k, _)| k);
        par_sort_by_key(&mut b, |&(k, _)| k);
        assert_eq!(a, b);
    }

    #[test]
    fn par_sort_with_explicit_policies_agrees() {
        let build = || -> Vec<(u32, usize)> {
            (0..3000)
                .map(|i| ((i as u32).wrapping_mul(2654435761) % 13, i))
                .collect()
        };
        let mut seq = build();
        let mut par = build();
        par_sort_by_key_with(ExecPolicy::Sequential, &Obs::noop(), &mut seq, |&(k, _)| k);
        par_sort_by_key_with(
            ExecPolicy::with_threads(4),
            &Obs::noop(),
            &mut par,
            |&(k, _)| k,
        );
        assert_eq!(seq, par);
    }

    #[test]
    fn staged_runner_consumes_in_index_order_under_both_policies() {
        for policy in [ExecPolicy::Sequential, ExecPolicy::with_threads(4)] {
            let mut seen = Vec::new();
            run_staged_with(
                policy,
                &Obs::noop(),
                200,
                4,
                |i| i * 7,
                |i, item| seen.push((i, item)),
            );
            assert_eq!(seen.len(), 200, "{policy:?}");
            for (k, &(i, item)) in seen.iter().enumerate() {
                assert_eq!(i, k);
                assert_eq!(item, k * 7);
            }
        }
    }

    #[test]
    fn staged_runner_zero_jobs_is_inert() {
        run_staged_with(
            ExecPolicy::with_threads(4),
            &Obs::noop(),
            0,
            8,
            |i| i,
            |_, _| panic!("no items to consume"),
        );
    }

    #[test]
    fn staged_runner_reports_stream_metrics_and_bounds_the_buffer() {
        let (obs, registry) = botmeter_obs::Obs::collecting();
        run_staged_with(
            ExecPolicy::with_threads(2),
            &obs,
            64,
            2,
            |i| vec![i; 16],
            |_, _| thread::sleep(std::time::Duration::from_micros(200)),
        );
        let snap = registry.snapshot();
        assert_eq!(snap.counter("sched.stream.batches"), Some(1));
        assert_eq!(snap.counter("sched.stream.items"), Some(64));
        let high = snap.counter("sched.stream.queue_high_water").unwrap_or(0);
        assert!(high <= 2, "buffer bound violated: {high}");
        // With a sleeping consumer and a 2-slot buffer the producer must
        // have blocked at least once.
        assert!(
            snap.counter("sched.stream.backpressure_stalls")
                .unwrap_or(0)
                > 0
        );
        // All stream metrics are scheduling-dependent and excluded from
        // the determinism contract.
        assert!(snap
            .deterministic_counters()
            .iter()
            .all(|c| !c.name.starts_with("sched.")));
    }

    #[test]
    fn staged_runner_producer_panic_resurfaces_without_deadlock() {
        with_silent_panics(|| {
            let consumed = AtomicUsize::new(0);
            let caught = catch_unwind(AssertUnwindSafe(|| {
                run_staged_with(
                    ExecPolicy::with_threads(2),
                    &Obs::noop(),
                    50,
                    4,
                    |i| {
                        if i == 10 {
                            panic!("producer died");
                        }
                        i
                    },
                    |_, _| {
                        consumed.fetch_add(1, Ordering::Relaxed);
                    },
                );
            }));
            assert!(caught.is_err(), "producer panic must resurface");
            // The consumer saw only a prefix, strictly in order.
            assert!(consumed.load(Ordering::Relaxed) <= 10);
        });
    }

    #[test]
    fn staged_runner_consumer_panic_resurfaces_without_deadlock() {
        with_silent_panics(|| {
            let caught = catch_unwind(AssertUnwindSafe(|| {
                run_staged_with(
                    ExecPolicy::with_threads(2),
                    &Obs::noop(),
                    1000,
                    1,
                    |i| i,
                    |i, _| {
                        if i == 3 {
                            panic!("consumer died");
                        }
                    },
                );
            }));
            let payload = caught.expect_err("consumer panic must resurface");
            let msg = payload
                .downcast_ref::<&'static str>()
                .copied()
                .unwrap_or("");
            assert_eq!(msg, "consumer died");
        });
    }

    #[test]
    fn pipelined_runner_consumes_in_index_order_under_every_worker_count() {
        for workers in [1usize, 2, 4, 8, 16] {
            let mut seen = Vec::new();
            run_pipelined_with(
                ExecPolicy::with_threads(workers),
                &Obs::noop(),
                300,
                |i| i * 3,
                |i, item| seen.push((i, item)),
            );
            assert_eq!(seen.len(), 300, "{workers} workers");
            for (k, &(i, item)) in seen.iter().enumerate() {
                assert_eq!(i, k);
                assert_eq!(item, k * 3);
            }
        }
    }

    #[test]
    fn pipelined_runner_zero_jobs_is_inert() {
        run_pipelined_with(
            ExecPolicy::with_threads(4),
            &Obs::noop(),
            0,
            |i| i,
            |_, _| panic!("no items to consume"),
        );
    }

    #[test]
    fn pipelined_runner_bounds_the_window_and_reports_metrics() {
        let (obs, registry) = botmeter_obs::Obs::collecting();
        run_pipelined_with(
            ExecPolicy::with_threads(4),
            &obs,
            100,
            |i| vec![i; 8],
            |_, _| thread::sleep(std::time::Duration::from_micros(100)),
        );
        let snap = registry.snapshot();
        assert_eq!(snap.counter("sched.stream.batches"), Some(1));
        assert_eq!(snap.counter("sched.stream.items"), Some(100));
        assert_eq!(snap.counter("sched.stream.producer_workers"), Some(4));
        let high = snap.counter("sched.stream.queue_high_water").unwrap_or(0);
        assert!(
            high <= PIPELINE_WINDOW as u64,
            "window bound violated: {high}"
        );
        assert!(snap
            .deterministic_counters()
            .iter()
            .all(|c| !c.name.starts_with("sched.")));
    }

    #[test]
    fn pipelined_runner_producer_panic_resurfaces_without_deadlock() {
        with_silent_panics(|| {
            let consumed = AtomicUsize::new(0);
            let caught = catch_unwind(AssertUnwindSafe(|| {
                run_pipelined_with(
                    ExecPolicy::with_threads(3),
                    &Obs::noop(),
                    60,
                    |i| {
                        if i == 9 {
                            panic!("producer died");
                        }
                        i
                    },
                    |_, _| {
                        consumed.fetch_add(1, Ordering::Relaxed);
                    },
                );
            }));
            assert!(caught.is_err(), "producer panic must resurface");
            // Only a prefix strictly before the dead item was consumed.
            assert!(consumed.load(Ordering::Relaxed) <= 9);
        });
    }

    #[test]
    fn pipelined_runner_consumer_panic_resurfaces_without_deadlock() {
        with_silent_panics(|| {
            let caught = catch_unwind(AssertUnwindSafe(|| {
                run_pipelined_with(
                    ExecPolicy::with_threads(3),
                    &Obs::noop(),
                    500,
                    |i| i,
                    |i, _| {
                        if i == 5 {
                            panic!("consumer died");
                        }
                    },
                );
            }));
            let payload = caught.expect_err("consumer panic must resurface");
            let msg = payload
                .downcast_ref::<&'static str>()
                .copied()
                .unwrap_or("");
            assert_eq!(msg, "consumer died");
        });
    }

    #[test]
    fn pipelined_runner_consume_may_mutate_carried_state() {
        // The consumer closure runs only on the calling thread, so carried
        // state (like the streaming pipeline's topology and fault stream)
        // needs no synchronisation.
        let mut acc = 0usize;
        run_pipelined_with(
            ExecPolicy::with_threads(4),
            &Obs::noop(),
            64,
            |i| i,
            |_, item| acc += item,
        );
        assert_eq!(acc, (0..64).sum());
    }

    #[test]
    fn merge_sorted_runs_equals_stable_sort_of_concatenation() {
        // Duplicate keys across runs so tie-breaking (earliest run first)
        // is observable through the payload.
        let runs: Vec<Vec<(u32, usize)>> = (0..5)
            .map(|r| {
                let mut run: Vec<(u32, usize)> = (0..200)
                    .map(|i| {
                        (
                            ((r * 200 + i) as u32).wrapping_mul(2654435761) % 11,
                            r * 200 + i,
                        )
                    })
                    .collect();
                run.sort_by_key(|&(k, _)| k);
                run
            })
            .collect();
        let mut reference: Vec<(u32, usize)> = runs.clone().into_iter().flatten().collect();
        // Re-sorting the concatenation of stable-sorted runs stably equals
        // stable-sorting the original concatenation.
        reference.sort_by_key(|&(k, _)| k);
        let merged = merge_sorted_runs(runs, |&(k, _)| k);
        assert_eq!(merged, reference);
        assert!(merge_sorted_runs(Vec::<Vec<u32>>::new(), |&x| x).is_empty());
        assert_eq!(
            merge_sorted_runs(vec![vec![], vec![1u32, 3], vec![], vec![2]], |&x| x),
            vec![1, 2, 3]
        );
    }

    #[test]
    fn merge_into_matches_pairwise_merge_bit_for_bit() {
        // Duplicate keys across runs so the earliest-run tie-break is
        // observable through the payload.
        let runs: Vec<Vec<(u32, usize)>> = (0..5)
            .map(|r| {
                let mut run: Vec<(u32, usize)> = (0..200)
                    .map(|i| {
                        (
                            ((r * 200 + i) as u32).wrapping_mul(2654435761) % 11,
                            r * 200 + i,
                        )
                    })
                    .collect();
                run.sort_by_key(|&(k, _)| k);
                run
            })
            .collect();
        let reference = merge_sorted_runs(runs.clone(), |&(k, _)| k);
        let mut out = Vec::new();
        merge_sorted_runs_into(&runs, |&(k, _)| k, &mut out);
        assert_eq!(out, reference);

        // Appends, never clears; empty runs are fine.
        let mut seeded = vec![(99u32, 0usize)];
        merge_sorted_runs_into(
            &[vec![], vec![(1, 1), (3, 3)], vec![(2, 2)]],
            |&(k, _)| k,
            &mut seeded,
        );
        assert_eq!(seeded, vec![(99, 0), (1, 1), (2, 2), (3, 3)]);
    }

    #[test]
    fn buffer_pool_recycles_capacity_and_bounds_retention() {
        let pool: BufferPool<u64> = BufferPool::new(2);
        let mut a = pool.acquire();
        let mut b = pool.acquire();
        let c = pool.acquire();
        assert_eq!(pool.high_water(), 3);
        a.extend(0..100);
        b.extend(0..50);
        let a_cap = a.capacity();
        pool.recycle(a);
        pool.recycle(b);
        pool.recycle(c); // beyond the bound: dropped
        assert_eq!(pool.idle(), 2);

        // LIFO: the most recently pooled comes back first, and capacity
        // survives the round trip.
        let back = pool.acquire();
        assert!(back.is_empty());
        let back2 = pool.acquire();
        assert!(back2.capacity() >= a_cap.min(100));
        // Dry pool allocates fresh.
        let fresh = pool.acquire();
        assert_eq!(fresh.capacity(), 0);
    }

    #[test]
    fn buffer_pool_metrics_live_under_the_sched_prefix() {
        let pool: BufferPool<u8> = BufferPool::new(1);
        let a = pool.acquire();
        let b = pool.acquire();
        pool.recycle(a);
        pool.recycle(b);
        let _ = pool.acquire();
        let (obs, registry) = botmeter_obs::Obs::collecting();
        pool.record_metrics(&obs);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("sched.pool.acquires"), Some(3));
        assert_eq!(snap.counter("sched.pool.fresh_allocs"), Some(2));
        assert_eq!(snap.counter("sched.pool.recycled"), Some(1));
        assert_eq!(snap.counter("sched.pool.dropped"), Some(1));
        assert_eq!(snap.counter("sched.pool.high_water"), Some(2));
        // Everything the pool reports is scheduling-dependent and stays
        // out of the determinism contract.
        assert!(snap
            .deterministic_counters()
            .iter()
            .all(|c| !c.name.starts_with("sched.pool.")));
    }

    #[test]
    fn par_sort_handles_small_inputs() {
        let mut v: Vec<u32> = vec![];
        par_sort_by_key(&mut v, |&x| x);
        assert!(v.is_empty());
        let mut v = vec![3u32, 1, 2];
        par_sort_by_key(&mut v, |&x| x);
        assert_eq!(v, vec![1, 2, 3]);
    }
}
