//! Deterministic parallel execution primitives for the BotMeter pipeline.
//!
//! Every parallel stage in the workspace — bot replay in `botmeter-sim`,
//! cache filtering in `botmeter-dns`, per-server estimation in
//! `botmeter-core`, trial sweeps in `botmeter-bench` — funnels through this
//! crate, so the threading policy lives in one place:
//!
//! * **Self-scheduling, bounded dispatch.** Jobs are handed out through a
//!   single atomic counter (a "job dispenser"), not a pre-filled queue:
//!   memory for in-flight coordination is `O(workers)`, and an idle worker
//!   steals the next index the moment it finishes — the same load-balancing
//!   effect as a work-stealing deque for the independent-jobs shapes BotMeter
//!   has, with none of the queue allocation.
//! * **Determinism by index.** Workers write each job's result into its own
//!   slot, so outputs are returned in job order no matter which thread ran
//!   what. Callers keep the contract that job `i` is a pure function of `i`.
//! * **One thread-count policy.** [`num_threads`] honours the
//!   `BOTMETER_THREADS` environment variable and falls back to the machine's
//!   available parallelism; every stage sizes itself from it.
//!
//! ```
//! let squares = botmeter_exec::run_indexed(8, |i| i * i);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;

/// The number of worker threads parallel stages use.
///
/// Set `BOTMETER_THREADS` to pin it (values below 1 are clamped to 1);
/// otherwise it is the machine's available parallelism.
pub fn num_threads() -> usize {
    if let Ok(v) = std::env::var("BOTMETER_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs `jobs` independent jobs of `f` (given the job index) across the
/// configured worker threads and returns the results in index order.
///
/// Jobs must be deterministic functions of their index; scheduling order is
/// unobservable in the output. With one worker (or one job) everything runs
/// inline on the calling thread, which is also the sequential reference
/// behaviour the determinism tests compare against.
pub fn run_indexed<T, F>(jobs: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if jobs == 0 {
        return Vec::new();
    }
    let workers = num_threads().min(jobs);
    if workers <= 1 {
        return (0..jobs).map(f).collect();
    }

    // Bounded coordination state: one atomic dispenser + one slot per job.
    // No job queue is materialised at all.
    let next_job = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..jobs).map(|_| Mutex::new(None)).collect();
    thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next_job.fetch_add(1, Ordering::Relaxed);
                if i >= jobs {
                    break;
                }
                let value = f(i);
                *slots[i].lock().expect("result slot poisoned") = Some(value);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every job completed")
        })
        .collect()
}

/// Splits `items` into at most [`num_threads`] contiguous chunks of
/// near-equal length and maps `f` over them in parallel, returning one
/// result per chunk in chunk order. Empty input yields no chunks.
///
/// `f` receives `(chunk_index, chunk_slice)`.
pub fn map_chunks<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> R + Sync,
{
    let bounds = chunk_bounds(items.len(), num_threads());
    run_indexed(bounds.len(), |i| {
        let (start, end) = bounds[i];
        f(i, &items[start..end])
    })
}

/// Computes `chunks` near-equal `(start, end)` ranges covering `0..len`
/// (fewer when `len < chunks`; none when `len == 0`).
pub fn chunk_bounds(len: usize, chunks: usize) -> Vec<(usize, usize)> {
    if len == 0 || chunks == 0 {
        return Vec::new();
    }
    let chunks = chunks.min(len);
    let base = len / chunks;
    let extra = len % chunks;
    let mut bounds = Vec::with_capacity(chunks);
    let mut start = 0;
    for i in 0..chunks {
        let size = base + usize::from(i < extra);
        bounds.push((start, start + size));
        start += size;
    }
    bounds
}

/// Stable parallel sort by key: chunk-sorts in parallel, then merges
/// adjacent runs pairwise (also in parallel) until one run remains.
///
/// Produces exactly the same ordering as `slice::sort_by_key` (which is
/// stable), so sequential and parallel pipelines agree bit-for-bit even when
/// keys collide.
pub fn par_sort_by_key<T, K, F>(items: &mut Vec<T>, key: F)
where
    T: Send,
    K: Ord,
    F: Fn(&T) -> K + Sync,
{
    let workers = num_threads();
    if workers <= 1 || items.len() < 2 {
        items.sort_by_key(key);
        return;
    }

    // Phase 1: split into contiguous chunks and sort each independently
    // (stable) in parallel.
    let bounds = chunk_bounds(items.len(), workers);
    let mut remaining = std::mem::take(items);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(bounds.len());
    for &(start, _) in bounds.iter().rev() {
        chunks.push(remaining.split_off(start));
    }
    chunks.reverse();
    let chunk_slots: Vec<Mutex<Option<Vec<T>>>> =
        chunks.into_iter().map(|c| Mutex::new(Some(c))).collect();
    let sorted: Vec<Vec<T>> = run_indexed(chunk_slots.len(), |i| {
        let mut chunk = chunk_slots[i]
            .lock()
            .expect("chunk slot poisoned")
            .take()
            .expect("chunk present");
        chunk.sort_by_key(&key);
        chunk
    });

    // Phase 2: pairwise stable merges until a single run remains. Merging
    // adjacent runs left-to-right (ties favour the left run) reproduces the
    // stable global order.
    let mut runs = sorted;
    while runs.len() > 1 {
        let pair_count = runs.len() / 2;
        let has_tail = runs.len() % 2 == 1;
        let tail = if has_tail { runs.pop() } else { None };
        type MergePair<T> = Mutex<Option<(Vec<T>, Vec<T>)>>;
        let slots: Vec<MergePair<T>> = {
            let mut pairs = Vec::with_capacity(pair_count);
            let mut iter = runs.drain(..);
            while let (Some(a), Some(b)) = (iter.next(), iter.next()) {
                pairs.push(Mutex::new(Some((a, b))));
            }
            pairs
        };
        let mut merged: Vec<Vec<T>> = run_indexed(slots.len(), |i| {
            let (a, b) = slots[i]
                .lock()
                .expect("merge slot poisoned")
                .take()
                .expect("pair present");
            merge_stable(a, b, &key)
        });
        if let Some(t) = tail {
            merged.push(t);
        }
        runs = merged;
    }
    *items = runs.pop().unwrap_or_default();
}

/// Stable two-run merge: ties take the left element first.
fn merge_stable<T, K: Ord, F: Fn(&T) -> K>(a: Vec<T>, b: Vec<T>, key: &F) -> Vec<T> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let mut ai = a.into_iter().peekable();
    let mut bi = b.into_iter().peekable();
    loop {
        match (ai.peek(), bi.peek()) {
            (Some(x), Some(y)) => {
                if key(x) <= key(y) {
                    out.push(ai.next().expect("peeked"));
                } else {
                    out.push(bi.next().expect("peeked"));
                }
            }
            (Some(_), None) => {
                out.extend(ai);
                break;
            }
            (None, _) => {
                out.extend(bi);
                break;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_indexed_ordered_and_complete() {
        let xs = run_indexed(100, |i| i * i);
        assert_eq!(xs.len(), 100);
        for (i, &v) in xs.iter().enumerate() {
            assert_eq!(v, i * i);
        }
    }

    #[test]
    fn run_indexed_zero_jobs() {
        assert!(run_indexed(0, |i| i).is_empty());
    }

    #[test]
    fn chunk_bounds_cover_everything() {
        for len in [0usize, 1, 2, 7, 100, 101] {
            for chunks in [1usize, 2, 3, 8, 200] {
                let bounds = chunk_bounds(len, chunks);
                let total: usize = bounds.iter().map(|(s, e)| e - s).sum();
                assert_eq!(total, len);
                let mut cursor = 0;
                for &(s, e) in &bounds {
                    assert_eq!(s, cursor);
                    assert!(e > s);
                    cursor = e;
                }
            }
        }
    }

    #[test]
    fn map_chunks_preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let sums = map_chunks(&items, |_, chunk| chunk.iter().sum::<u64>());
        assert_eq!(sums.iter().sum::<u64>(), items.iter().sum::<u64>());
    }

    #[test]
    fn par_sort_matches_sequential_stable_sort() {
        // Many duplicate keys so stability is observable through the payload.
        let mut a: Vec<(u32, usize)> = (0..5000)
            .map(|i| ((i as u32).wrapping_mul(2654435761) % 17, i))
            .collect();
        let mut b = a.clone();
        a.sort_by_key(|&(k, _)| k);
        par_sort_by_key(&mut b, |&(k, _)| k);
        assert_eq!(a, b);
    }

    #[test]
    fn par_sort_handles_small_inputs() {
        let mut v: Vec<u32> = vec![];
        par_sort_by_key(&mut v, |&x| x);
        assert!(v.is_empty());
        let mut v = vec![3u32, 1, 2];
        par_sort_by_key(&mut v, |&x| x);
        assert_eq!(v, vec![1, 2, 3]);
    }
}
