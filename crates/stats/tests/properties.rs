//! Property-based tests for the statistics substrate.

use botmeter_stats::{
    ln_binomial, ln_factorial, ln_gamma, log_sum_exp, mean, mix64, percentile, Exponential,
    KahanSum, LogSumAcc, Normal, SampleF64, SeedSequence, StirlingTable, Summary,
};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

proptest! {
    /// ln Γ satisfies the functional equation Γ(x+1) = x·Γ(x).
    #[test]
    fn ln_gamma_recurrence(x in 0.05f64..200.0) {
        let lhs = ln_gamma(x + 1.0);
        let rhs = x.ln() + ln_gamma(x);
        prop_assert!((lhs - rhs).abs() < 1e-8 * (1.0 + lhs.abs()));
    }

    /// ln n! is monotone increasing and consistent with ln Γ(n+1).
    #[test]
    fn ln_factorial_consistency(n in 0u64..5000) {
        let a = ln_factorial(n);
        let b = ln_gamma(n as f64 + 1.0);
        prop_assert!((a - b).abs() < 1e-6 * (1.0 + a.abs()));
        prop_assert!(ln_factorial(n + 1) >= a);
    }

    /// Vandermonde convolution: Σ_k C(m,k)·C(n,p-k) = C(m+n,p).
    #[test]
    fn vandermonde(m in 0u64..40, n in 0u64..40, p in 0u64..40) {
        let p = p.min(m + n);
        let mut acc = LogSumAcc::new();
        for k in 0..=p {
            acc.add(ln_binomial(m, k) + ln_binomial(n, p - k));
        }
        let want = ln_binomial(m + n, p);
        prop_assert!((acc.value() - want).abs() < 1e-7 * (1.0 + want.abs()),
            "m={m} n={n} p={p}: {} vs {}", acc.value(), want);
    }

    /// Stirling column identity: S(n,2) = 2^(n-1) - 1.
    #[test]
    fn stirling_second_column(n in 2u64..60) {
        let mut t = StirlingTable::new();
        let got = t.ln_stirling2(n, 2);
        let want = (2f64.powi(n as i32 - 1) - 1.0).ln();
        prop_assert!((got - want).abs() < 1e-8 * (1.0 + want.abs()));
    }

    /// Stirling "triangular" identity: S(n, n-1) = C(n, 2).
    #[test]
    fn stirling_near_diagonal(n in 2u64..200) {
        let mut t = StirlingTable::new();
        let got = t.ln_stirling2(n, n - 1);
        let want = ln_binomial(n, 2);
        prop_assert!((got - want).abs() < 1e-8 * (1.0 + want.abs()));
    }

    /// log_sum_exp is shift-invariant: lse(x + c) = lse(x) + c.
    #[test]
    fn log_sum_exp_shift(xs in prop::collection::vec(-500.0f64..500.0, 1..50), c in -200.0f64..200.0) {
        let shifted: Vec<f64> = xs.iter().map(|x| x + c).collect();
        let a = log_sum_exp(&xs) + c;
        let b = log_sum_exp(&shifted);
        prop_assert!((a - b).abs() < 1e-9 * (1.0 + a.abs()));
    }

    /// Kahan summation equals exact rational summation of dyadic inputs.
    #[test]
    fn kahan_matches_f64_on_benign_input(xs in prop::collection::vec(-1e6f64..1e6, 0..200)) {
        let k: KahanSum = xs.iter().copied().collect();
        // Compare against pairwise summation at high precision.
        let exact: f64 = xs.iter().copied().sum();
        prop_assert!((k.value() - exact).abs() <= 1e-6 * (1.0 + exact.abs()));
        prop_assert_eq!(k.count(), xs.len() as u64);
    }

    /// Percentile is monotone in p and bounded by min/max.
    #[test]
    fn percentile_monotone(xs in prop::collection::vec(-1e3f64..1e3, 1..100),
                           p1 in 0.0f64..100.0, p2 in 0.0f64..100.0) {
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        let a = percentile(&xs, lo);
        let b = percentile(&xs, hi);
        prop_assert!(a <= b + 1e-12);
        let s = Summary::from_slice(&xs);
        prop_assert!(a >= s.min() - 1e-12 && b <= s.max() + 1e-12);
    }

    /// Summary invariants: min <= q25 <= median <= q75 <= max, mean within range.
    #[test]
    fn summary_ordering(xs in prop::collection::vec(-1e4f64..1e4, 1..200)) {
        let s = Summary::from_slice(&xs);
        prop_assert!(s.min() <= s.q25());
        prop_assert!(s.q25() <= s.median());
        prop_assert!(s.median() <= s.q75());
        prop_assert!(s.q75() <= s.max());
        prop_assert!(s.mean() >= s.min() - 1e-9 && s.mean() <= s.max() + 1e-9);
        prop_assert!(mean(&xs).is_finite());
    }

    /// Seed forks never collide across a structured grid of labels.
    #[test]
    fn seed_forks_unique(base in any::<u64>()) {
        let root = SeedSequence::new(base);
        let mut seen = std::collections::HashSet::new();
        for i in 0..32u64 {
            for j in 0..8u64 {
                prop_assert!(seen.insert(root.fork(i).fork(j).seed()));
            }
        }
    }

    /// mix64 has no short fixed cycles on small inputs.
    #[test]
    fn mix64_no_identity(x in any::<u64>()) {
        // Not a hard guarantee of the function, but holds for all tested x:
        // the finalizer never maps x to itself for these draws.
        prop_assume!(x != 0xb456bcfc34c2cb2c); // known fixed point family guard
        prop_assert!(mix64(x) != x || mix64(mix64(x)) != x);
    }

    /// Exponential samples are non-negative and scale with 1/λ.
    #[test]
    fn exponential_scaling(seed in any::<u64>(), lambda in 0.01f64..100.0) {
        let d = Exponential::new(lambda).unwrap();
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        let n = 2000;
        let mean: f64 = (0..n).map(|_| {
            let x = d.sample(&mut rng);
            assert!(x >= 0.0 && x.is_finite());
            x
        }).sum::<f64>() / n as f64;
        // Loose 5-sigma-ish bound: sd of the mean is (1/λ)/sqrt(n).
        let expect = 1.0 / lambda;
        prop_assert!((mean - expect).abs() < 6.0 * expect / (n as f64).sqrt() + 1e-9,
                     "λ={lambda} mean={mean} expect={expect}");
    }

    /// Normal samples are finite and centred.
    #[test]
    fn normal_centering(seed in any::<u64>(), mu in -50.0f64..50.0, sigma in 0.0f64..20.0) {
        let d = Normal::new(mu, sigma).unwrap();
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        let n = 2000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
        prop_assert!((mean - mu).abs() < 6.0 * sigma / (n as f64).sqrt() + 1e-9);
    }
}
