//! Compensated (Neumaier) floating-point summation.

/// A compensated summation accumulator (Neumaier's improvement of Kahan's
/// algorithm), used wherever the experiment harness averages thousands of
/// per-trial errors.
///
/// # Example
///
/// ```
/// use botmeter_stats::KahanSum;
/// let mut s = KahanSum::new();
/// s.add(1.0);
/// s.add(1e100);
/// s.add(1.0);
/// s.add(-1e100);
/// assert_eq!(s.value(), 2.0); // naive f64 summation would return 0.0
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct KahanSum {
    sum: f64,
    compensation: f64,
    count: u64,
}

impl KahanSum {
    /// Creates an accumulator holding zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one term.
    pub fn add(&mut self, x: f64) {
        let t = self.sum + x;
        if self.sum.abs() >= x.abs() {
            self.compensation += (self.sum - t) + x;
        } else {
            self.compensation += (x - t) + self.sum;
        }
        self.sum = t;
        self.count += 1;
    }

    /// The compensated sum of everything added so far.
    pub fn value(&self) -> f64 {
        self.sum + self.compensation
    }

    /// Number of terms added.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the terms added so far; `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.value() / self.count as f64)
        }
    }
}

impl Extend<f64> for KahanSum {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.add(x);
        }
    }
}

impl FromIterator<f64> for KahanSum {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = KahanSum::new();
        s.extend(iter);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sum_is_zero() {
        let s = KahanSum::new();
        assert_eq!(s.value(), 0.0);
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), None);
    }

    #[test]
    fn recovers_cancellation() {
        let mut s = KahanSum::new();
        s.add(1e16);
        s.add(1.0);
        s.add(-1e16);
        assert_eq!(s.value(), 1.0);
    }

    #[test]
    fn many_small_terms() {
        let s: KahanSum = std::iter::repeat_n(0.1, 1_000_000).collect();
        assert!((s.value() - 100_000.0).abs() < 1e-6);
        assert_eq!(s.count(), 1_000_000);
    }

    #[test]
    fn mean_matches_value_over_count() {
        let mut s = KahanSum::new();
        for i in 1..=10 {
            s.add(i as f64);
        }
        assert_eq!(s.mean(), Some(5.5));
    }
}
