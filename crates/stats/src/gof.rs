//! Goodness-of-fit: the Kolmogorov–Smirnov statistic.
//!
//! The simulator's claims rest on its samplers actually following the
//! distributions the paper's models assume (exponential inter-activation
//! gaps, Poisson counts). A one-sample KS test is the standard check, and
//! the workspace uses it in tests to guard the samplers against
//! regressions.

/// The one-sample Kolmogorov–Smirnov statistic: the supremum distance
/// between the sample's empirical CDF and a reference CDF.
///
/// `cdf` must be a (weakly) increasing function onto `[0, 1]`.
///
/// # Panics
///
/// Panics if `sample` is empty.
///
/// # Example
///
/// ```
/// // A perfectly uniform grid against the U(0,1) CDF: distance 1/(2n).
/// let sample: Vec<f64> = (0..100).map(|i| (i as f64 + 0.5) / 100.0).collect();
/// let d = botmeter_stats::ks_statistic(&sample, |x| x.clamp(0.0, 1.0));
/// assert!(d <= 0.5 / 100.0 + 1e-12);
/// ```
pub fn ks_statistic<F: Fn(f64) -> f64>(sample: &[f64], cdf: F) -> f64 {
    assert!(!sample.is_empty(), "KS statistic of empty sample");
    let mut sorted = sample.to_vec();
    sorted.sort_by(f64::total_cmp);
    let n = sorted.len() as f64;
    let mut d = 0.0f64;
    for (i, &x) in sorted.iter().enumerate() {
        let f = cdf(x);
        let ecdf_before = i as f64 / n;
        let ecdf_after = (i + 1) as f64 / n;
        d = d.max((f - ecdf_before).abs()).max((ecdf_after - f).abs());
    }
    d
}

/// Approximate critical value of the one-sample KS statistic at
/// significance `alpha` (asymptotic formula `c(α)/√n`, good for n ≥ 35).
///
/// Supported `alpha` values: 0.10, 0.05, 0.01 — anything else panics.
///
/// # Example
///
/// ```
/// let crit = botmeter_stats::ks_critical_value(10_000, 0.01);
/// assert!(crit < 0.02);
/// ```
pub fn ks_critical_value(n: usize, alpha: f64) -> f64 {
    assert!(n > 0, "sample size must be positive");
    let c = if (alpha - 0.10).abs() < 1e-12 {
        1.224
    } else if (alpha - 0.05).abs() < 1e-12 {
        1.358
    } else if (alpha - 0.01).abs() < 1e-12 {
        1.628
    } else {
        panic!("unsupported alpha {alpha}; use 0.10, 0.05 or 0.01")
    };
    c / (n as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Exponential, SampleF64};
    use rand::SeedableRng;

    #[test]
    fn uniform_grid_is_near_zero() {
        let sample: Vec<f64> = (0..1000).map(|i| (i as f64 + 0.5) / 1000.0).collect();
        let d = ks_statistic(&sample, |x| x.clamp(0.0, 1.0));
        assert!(d <= 0.5 / 1000.0 + 1e-12, "{d}");
    }

    #[test]
    fn detects_wrong_distribution() {
        // A squared-uniform sample against the U(0,1) CDF must fail badly.
        let sample: Vec<f64> = (0..1000)
            .map(|i| {
                let u = (i as f64 + 0.5) / 1000.0;
                u * u
            })
            .collect();
        let d = ks_statistic(&sample, |x| x.clamp(0.0, 1.0));
        assert!(d > ks_critical_value(1000, 0.01) * 4.0, "{d}");
    }

    #[test]
    fn exponential_sampler_passes_ks() {
        let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(42);
        let lambda = 3.0;
        let dist = Exponential::new(lambda).unwrap();
        let sample: Vec<f64> = (0..5000).map(|_| dist.sample(&mut rng)).collect();
        let d = ks_statistic(&sample, |x| 1.0 - (-lambda * x.max(0.0)).exp());
        // One fixed seed: use the 1% critical value with headroom.
        assert!(d < ks_critical_value(5000, 0.01) * 1.5, "KS {d}");
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_sample_panics() {
        ks_statistic(&[], |x| x);
    }

    #[test]
    #[should_panic(expected = "unsupported alpha")]
    fn bad_alpha_panics() {
        ks_critical_value(100, 0.2);
    }

    #[test]
    fn critical_value_shrinks_with_n() {
        assert!(ks_critical_value(10_000, 0.05) < ks_critical_value(100, 0.05));
        assert!(ks_critical_value(100, 0.01) > ks_critical_value(100, 0.10));
    }
}
