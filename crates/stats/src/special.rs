//! Special functions: log-gamma, log-factorial, log-binomial and log-space
//! accumulation helpers.

/// Natural logarithm of the gamma function, `ln Γ(x)`, for `x > 0`.
///
/// Uses the Lanczos approximation (g = 7, 9 coefficients), accurate to about
/// 1e-13 relative error over the positive reals, which is far tighter than
/// anything the BotMeter estimators require.
///
/// # Panics
///
/// Panics if `x <= 0` (the estimators only ever evaluate the positive branch,
/// so a hard error is preferable to silently returning a reflected value).
///
/// # Example
///
/// ```
/// let v = botmeter_stats::ln_gamma(5.0); // Γ(5) = 24
/// assert!((v - 24f64.ln()).abs() < 1e-12);
/// ```
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    // Lanczos coefficients for g = 7.
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula keeps accuracy near zero.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEF[0];
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Natural logarithm of `n!`.
///
/// Values up to `n = 255` come from a precomputed table (exact to f64
/// rounding); larger arguments fall back to [`ln_gamma`].
///
/// # Example
///
/// ```
/// assert!((botmeter_stats::ln_factorial(4) - 24f64.ln()).abs() < 1e-12);
/// ```
pub fn ln_factorial(n: u64) -> f64 {
    const TABLE_LEN: usize = 256;
    // Lazily built once; cheap enough to compute eagerly with a static
    // initializer-free approach using OnceLock.
    use std::sync::OnceLock;
    static TABLE: OnceLock<[f64; TABLE_LEN]> = OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0.0f64; TABLE_LEN];
        let mut acc = 0.0f64;
        for (i, slot) in t.iter_mut().enumerate() {
            if i > 0 {
                acc += (i as f64).ln();
            }
            *slot = acc;
        }
        t
    });
    if (n as usize) < TABLE_LEN {
        table[n as usize]
    } else {
        ln_gamma(n as f64 + 1.0)
    }
}

/// Natural logarithm of the binomial coefficient `C(n, k)`.
///
/// Returns `f64::NEG_INFINITY` when `k > n`, which is the natural log-space
/// encoding of "zero ways" and lets callers use the value in
/// [`log_sum_exp`]-style accumulation without special-casing.
///
/// # Example
///
/// ```
/// let v = botmeter_stats::ln_binomial(10, 3); // C(10,3) = 120
/// assert!((v - 120f64.ln()).abs() < 1e-10);
/// assert_eq!(botmeter_stats::ln_binomial(3, 10), f64::NEG_INFINITY);
/// ```
pub fn ln_binomial(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    let k = k.min(n - k);
    if k == 0 {
        return 0.0;
    }
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

/// The binomial coefficient `C(n, k)` as an `f64` (may be `inf` for huge
/// arguments; use [`ln_binomial`] when magnitudes are extreme).
///
/// # Example
///
/// ```
/// assert!((botmeter_stats::binomial(6, 2) - 15.0).abs() < 1e-9);
/// ```
pub fn binomial(n: u64, k: u64) -> f64 {
    if k > n {
        return 0.0;
    }
    ln_binomial(n, k).exp()
}

/// Numerically stable `ln(Σ exp(x_i))` over a slice.
///
/// Empty input yields `NEG_INFINITY` (the log of an empty sum).
///
/// # Example
///
/// ```
/// let v = botmeter_stats::log_sum_exp(&[0.0, 0.0]); // ln(2)
/// assert!((v - 2f64.ln()).abs() < 1e-12);
/// ```
pub fn log_sum_exp(xs: &[f64]) -> f64 {
    let mut acc = LogSumAcc::new();
    for &x in xs {
        acc.add(x);
    }
    acc.value()
}

/// Streaming log-sum-exp accumulator.
///
/// Maintains a running maximum and a scaled sum so that terms may be added
/// one at a time without first materialising them in a vector.
///
/// # Example
///
/// ```
/// use botmeter_stats::LogSumAcc;
/// let mut acc = LogSumAcc::new();
/// acc.add(700.0);
/// acc.add(700.0);
/// assert!((acc.value() - (700.0 + 2f64.ln())).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogSumAcc {
    max: f64,
    sum: f64,
}

impl LogSumAcc {
    /// Creates an empty accumulator whose [`value`](Self::value) is `-inf`.
    pub fn new() -> Self {
        LogSumAcc {
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }

    /// Adds a term given as its natural logarithm.
    pub fn add(&mut self, ln_x: f64) {
        if ln_x == f64::NEG_INFINITY {
            return;
        }
        if ln_x <= self.max {
            self.sum += (ln_x - self.max).exp();
        } else {
            // Rescale the existing sum to the new maximum.
            self.sum = self.sum * (self.max - ln_x).exp() + 1.0;
            self.max = ln_x;
        }
    }

    /// The logarithm of the accumulated sum.
    pub fn value(&self) -> f64 {
        if self.max == f64::NEG_INFINITY {
            f64::NEG_INFINITY
        } else {
            self.max + self.sum.ln()
        }
    }
}

impl Default for LogSumAcc {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_factorials() {
        let mut fact = 1.0f64;
        for n in 1u32..20 {
            fact *= n as f64;
            let got = ln_gamma(n as f64 + 1.0);
            assert!(
                (got - fact.ln()).abs() < 1e-10,
                "ln_gamma({}) = {got}, want {}",
                n + 1,
                fact.ln()
            );
        }
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Γ(1/2) = sqrt(pi)
        let got = ln_gamma(0.5);
        assert!((got - std::f64::consts::PI.sqrt().ln()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "requires x > 0")]
    fn ln_gamma_rejects_nonpositive() {
        ln_gamma(0.0);
    }

    #[test]
    fn ln_factorial_table_and_tail_agree() {
        // The table/ln_gamma seam at n = 256 must be continuous.
        let a = ln_factorial(255);
        let b = ln_factorial(256);
        assert!((b - a - 256f64.ln()).abs() < 1e-8);
    }

    #[test]
    fn binomial_small_values_exact() {
        assert_eq!(binomial(0, 0), 1.0);
        assert_eq!(binomial(5, 0), 1.0);
        assert_eq!(binomial(5, 5), 1.0);
        assert!((binomial(10, 4) - 210.0).abs() < 1e-9);
        assert_eq!(binomial(4, 9), 0.0);
    }

    #[test]
    fn ln_binomial_symmetry() {
        for n in 0u64..40 {
            for k in 0..=n {
                let a = ln_binomial(n, k);
                let b = ln_binomial(n, n - k);
                assert!((a - b).abs() < 1e-10, "C({n},{k}) asymmetric");
            }
        }
    }

    #[test]
    fn ln_binomial_pascal_rule() {
        // C(n,k) = C(n-1,k-1) + C(n-1,k) in log space.
        for n in 2u64..60 {
            for k in 1..n {
                let lhs = ln_binomial(n, k);
                let rhs = log_sum_exp(&[ln_binomial(n - 1, k - 1), ln_binomial(n - 1, k)]);
                assert!((lhs - rhs).abs() < 1e-9, "Pascal fails at ({n},{k})");
            }
        }
    }

    #[test]
    fn log_sum_exp_handles_extremes() {
        assert_eq!(log_sum_exp(&[]), f64::NEG_INFINITY);
        assert_eq!(log_sum_exp(&[f64::NEG_INFINITY]), f64::NEG_INFINITY);
        let v = log_sum_exp(&[-1000.0, -1000.0 + 1.0]);
        let want = (-1000.0f64).exp(); // irrelevant: check shifted identity
        let _ = want;
        assert!((v - (-1000.0 + (1.0 + std::f64::consts::E).ln())).abs() < 1e-9);
    }

    #[test]
    fn log_sum_acc_order_independent() {
        let terms = [3.0, -2.0, 10.0, 9.99, -50.0];
        let mut fwd = LogSumAcc::new();
        for &t in &terms {
            fwd.add(t);
        }
        let mut rev = LogSumAcc::new();
        for &t in terms.iter().rev() {
            rev.add(t);
        }
        assert!((fwd.value() - rev.value()).abs() < 1e-12);
    }
}
