//! Statistics substrate for the BotMeter workspace.
//!
//! The BotMeter estimators ([ICDCS 2016]) lean on a handful of numerical
//! building blocks — log-gamma, log-space binomial coefficients, Stirling
//! numbers of the second kind, Poisson/exponential/normal/Zipf sampling and
//! robust descriptive statistics — none of which we take from third-party
//! statistics crates. This crate implements all of them from scratch with an
//! emphasis on:
//!
//! * **log-space numerics** so that the combinatorial mass functions of the
//!   Bernoulli estimator (Theorem 1 of the paper) never overflow, and
//! * **determinism** — every sampler takes a caller-provided [`rand::Rng`],
//!   so simulations are reproducible given a seed.
//!
//! # Example
//!
//! ```
//! use botmeter_stats::{ln_binomial, Summary};
//!
//! // C(50_000, 500) has ~1000 decimal digits; its log is perfectly tame.
//! let ln_c = ln_binomial(50_000, 500);
//! assert!(ln_c > 0.0 && ln_c.is_finite());
//!
//! let s = Summary::from_slice(&[1.0, 2.0, 3.0, 4.0]);
//! assert_eq!(s.mean(), 2.5);
//! ```
//!
//! [ICDCS 2016]: https://doi.org/10.1109/ICDCS.2016.97

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod descriptive;
mod distributions;
mod gof;
mod kahan;
mod seed;
mod special;
mod stirling;

pub use descriptive::{mean, percentile, std_dev, variance, OnlineMoments, Summary};
pub use distributions::{
    Bernoulli, Exponential, LogNormal, Normal, Poisson, SampleF64, SampleU64, Zipf,
};
pub use gof::{ks_critical_value, ks_statistic};
pub use kahan::KahanSum;
pub use seed::{mix64, SeedSequence};
pub use special::{binomial, ln_binomial, ln_factorial, ln_gamma, log_sum_exp, LogSumAcc};
pub use stirling::{SharedStirling, StirlingTable};
