//! Stirling numbers of the second kind, computed and cached in log space.
//!
//! The Bernoulli estimator (Theorem 1 of the BotMeter paper) evaluates
//! `S(n, m)` — the number of ways to partition `n` labelled items into `m`
//! non-empty unlabelled blocks — for `n` in the hundreds, where the raw
//! values exceed 1e300. We therefore keep the whole triangle as natural
//! logarithms, filled row by row with the recurrence
//! `S(n, m) = m·S(n−1, m) + S(n−1, m−1)` in log-sum-exp form.

use crate::special::LogSumAcc;

/// A growable cache of `ln S(n, m)` (Stirling numbers of the second kind).
///
/// Rows are materialised lazily: asking for `ln_stirling2(n, m)` fills the
/// triangle up to row `n` on first use and answers from the cache afterwards.
///
/// # Example
///
/// ```
/// use botmeter_stats::StirlingTable;
/// let mut t = StirlingTable::new();
/// // S(4, 2) = 7
/// assert!((t.ln_stirling2(4, 2) - 7f64.ln()).abs() < 1e-12);
/// // S(n, 1) = 1 for n >= 1
/// assert_eq!(t.ln_stirling2(9, 1), 0.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct StirlingTable {
    /// `rows[n][m]` = ln S(n, m) for 0 <= m <= n.
    rows: Vec<Vec<f64>>,
}

impl StirlingTable {
    /// Creates an empty table (row 0 is synthesised on demand).
    pub fn new() -> Self {
        StirlingTable { rows: Vec::new() }
    }

    /// `ln S(n, m)`; returns `-inf` for the zero cases (`m > n`, or `m == 0`
    /// with `n > 0`). `S(0, 0) = 1` by convention.
    pub fn ln_stirling2(&mut self, n: u64, m: u64) -> f64 {
        if m > n {
            return f64::NEG_INFINITY;
        }
        let n = n as usize;
        let m = m as usize;
        self.fill_to(n);
        self.rows[n][m]
    }

    /// `S(n, m)` as an `f64` (may overflow to `inf` for large rows; prefer
    /// [`ln_stirling2`](Self::ln_stirling2) in products).
    pub fn stirling2(&mut self, n: u64, m: u64) -> f64 {
        self.ln_stirling2(n, m).exp()
    }

    /// Number of rows currently materialised (for diagnostics/tests).
    pub fn rows_filled(&self) -> usize {
        self.rows.len()
    }

    fn fill_to(&mut self, n: usize) {
        if self.rows.is_empty() {
            // Row 0: S(0,0) = 1.
            self.rows.push(vec![0.0]);
        }
        while self.rows.len() <= n {
            let prev = self.rows.last().expect("row 0 exists");
            let row_n = self.rows.len();
            let mut row = Vec::with_capacity(row_n + 1);
            // m = 0: S(n,0) = 0 for n > 0.
            row.push(f64::NEG_INFINITY);
            for m in 1..row_n {
                let mut acc = LogSumAcc::new();
                acc.add((m as f64).ln() + prev[m]);
                acc.add(prev[m - 1]);
                row.push(acc.value());
            }
            // m = n: S(n,n) = 1.
            row.push(0.0);
            self.rows.push(row);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exact small values via the u128 recurrence, for cross-checking.
    fn exact(n: usize, m: usize) -> u128 {
        let mut rows: Vec<Vec<u128>> = vec![vec![1]];
        for r in 1..=n {
            let prev = &rows[r - 1];
            let mut row = vec![0u128; r + 1];
            for k in 1..=r {
                let carry = if k < prev.len() { prev[k] } else { 0 };
                let diag = prev[k - 1];
                row[k] = (k as u128) * carry + diag;
            }
            rows.push(row);
        }
        if m <= n {
            rows[n][m]
        } else {
            0
        }
    }

    #[test]
    fn matches_exact_small_triangle() {
        let mut t = StirlingTable::new();
        for n in 0u64..=25 {
            for m in 0u64..=n {
                let want = exact(n as usize, m as usize);
                let got = t.ln_stirling2(n, m);
                if want == 0 {
                    assert_eq!(got, f64::NEG_INFINITY, "S({n},{m}) should be 0");
                } else {
                    let w = (want as f64).ln();
                    assert!(
                        (got - w).abs() < 1e-9 * (1.0 + w.abs()),
                        "S({n},{m}): got ln {got}, want ln {w}"
                    );
                }
            }
        }
    }

    #[test]
    fn known_values() {
        let mut t = StirlingTable::new();
        assert!((t.stirling2(5, 3) - 25.0).abs() < 1e-9);
        assert!((t.stirling2(6, 3) - 90.0).abs() < 1e-9);
        assert!((t.stirling2(7, 4) - 350.0).abs() < 1e-7);
    }

    #[test]
    fn zero_cases() {
        let mut t = StirlingTable::new();
        assert_eq!(t.ln_stirling2(3, 5), f64::NEG_INFINITY);
        assert_eq!(t.ln_stirling2(4, 0), f64::NEG_INFINITY);
        assert_eq!(t.ln_stirling2(0, 0), 0.0);
    }

    #[test]
    fn large_rows_stay_finite() {
        let mut t = StirlingTable::new();
        // S(500, 250) overflows f64 massively; log value must be finite.
        let v = t.ln_stirling2(500, 250);
        assert!(v.is_finite() && v > 0.0);
    }

    #[test]
    fn cache_is_incremental() {
        let mut t = StirlingTable::new();
        t.ln_stirling2(10, 5);
        assert_eq!(t.rows_filled(), 11);
        t.ln_stirling2(4, 2);
        assert_eq!(t.rows_filled(), 11, "smaller query must not shrink/refill");
        t.ln_stirling2(12, 12);
        assert_eq!(t.rows_filled(), 13);
    }

    #[test]
    fn row_sum_equals_bell_number() {
        // Σ_m S(n,m) = Bell(n). Bell(10) = 115975.
        let mut t = StirlingTable::new();
        let mut acc = crate::special::LogSumAcc::new();
        for m in 0..=10 {
            acc.add(t.ln_stirling2(10, m));
        }
        assert!((acc.value() - 115_975f64.ln()).abs() < 1e-9);
    }
}
