//! Stirling numbers of the second kind, computed and cached in log space.
//!
//! The Bernoulli estimator (Theorem 1 of the BotMeter paper) evaluates
//! `S(n, m)` — the number of ways to partition `n` labelled items into `m`
//! non-empty unlabelled blocks — for `n` in the hundreds, where the raw
//! values exceed 1e300. We therefore keep the whole triangle as natural
//! logarithms, filled row by row with the recurrence
//! `S(n, m) = m·S(n−1, m) + S(n−1, m−1)` in log-sum-exp form.
//!
//! [`StirlingTable`] is the single-owner cache; [`SharedStirling`] wraps it
//! (plus a memoized `ln_binomial` row cache) behind `Arc`s so one filled
//! triangle can serve every landscape cell across a worker pool.

use crate::special::{ln_binomial, LogSumAcc};
use std::collections::HashMap;
use std::sync::{Arc, PoisonError, RwLock};

/// A growable cache of `ln S(n, m)` (Stirling numbers of the second kind).
///
/// Rows are materialised lazily: asking for `ln_stirling2(n, m)` fills the
/// triangle up to row `n` on first use and answers from the cache afterwards.
///
/// # Example
///
/// ```
/// use botmeter_stats::StirlingTable;
/// let mut t = StirlingTable::new();
/// // S(4, 2) = 7
/// assert!((t.ln_stirling2(4, 2) - 7f64.ln()).abs() < 1e-12);
/// // S(n, 1) = 1 for n >= 1
/// assert_eq!(t.ln_stirling2(9, 1), 0.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct StirlingTable {
    /// `rows[n][m]` = ln S(n, m) for 0 <= m <= n. Rows sit behind `Arc`s
    /// so whole-row borrows ([`row`](Self::row)) are a pointer clone — the
    /// Theorem-1 posterior sum reads a full row per `n` and would
    /// otherwise pay a lock/lookup per `(n, m)` pair.
    rows: Vec<Arc<Vec<f64>>>,
}

impl StirlingTable {
    /// Creates an empty table (row 0 is synthesised on demand).
    pub fn new() -> Self {
        StirlingTable { rows: Vec::new() }
    }

    /// `ln S(n, m)`; returns `-inf` for the zero cases (`m > n`, or `m == 0`
    /// with `n > 0`). `S(0, 0) = 1` by convention.
    pub fn ln_stirling2(&mut self, n: u64, m: u64) -> f64 {
        if m > n {
            return f64::NEG_INFINITY;
        }
        let n = n as usize;
        let m = m as usize;
        self.fill_to(n);
        self.rows[n][m]
    }

    /// `S(n, m)` as an `f64` (may overflow to `inf` for large rows; prefer
    /// [`ln_stirling2`](Self::ln_stirling2) in products).
    pub fn stirling2(&mut self, n: u64, m: u64) -> f64 {
        self.ln_stirling2(n, m).exp()
    }

    /// `ln S(n, m)` without filling: `Some` when row `n` is already
    /// materialised (the zero cases answer without any row), `None` when a
    /// [`fill_to`](Self::ln_stirling2) pass is still needed.
    pub fn peek(&self, n: u64, m: u64) -> Option<f64> {
        if m > n {
            return Some(f64::NEG_INFINITY);
        }
        self.rows.get(n as usize).map(|row| row[m as usize])
    }

    /// The whole row `[ln S(n, 0), …, ln S(n, n)]`, filling the triangle up
    /// to `n` first. The returned handle shares the cached storage.
    pub fn row(&mut self, n: u64) -> Arc<Vec<f64>> {
        self.fill_to(n as usize);
        Arc::clone(&self.rows[n as usize])
    }

    /// [`row`](Self::row) without filling: `None` when row `n` is not yet
    /// materialised.
    pub fn peek_row(&self, n: u64) -> Option<Arc<Vec<f64>>> {
        self.rows.get(n as usize).map(Arc::clone)
    }

    /// Number of rows currently materialised (for diagnostics/tests).
    pub fn rows_filled(&self) -> usize {
        self.rows.len()
    }

    fn fill_to(&mut self, n: usize) {
        if self.rows.is_empty() {
            // Row 0: S(0,0) = 1.
            self.rows.push(Arc::new(vec![0.0]));
        }
        while self.rows.len() <= n {
            let prev = self.rows.last().expect("row 0 exists");
            let row_n = self.rows.len();
            let mut row = Vec::with_capacity(row_n + 1);
            // m = 0: S(n,0) = 0 for n > 0.
            row.push(f64::NEG_INFINITY);
            for m in 1..row_n {
                let mut acc = LogSumAcc::new();
                acc.add((m as f64).ln() + prev[m]);
                acc.add(prev[m - 1]);
                row.push(acc.value());
            }
            // m = n: S(n,n) = 1.
            row.push(0.0);
            self.rows.push(Arc::new(row));
        }
    }
}

/// A thread-safe, clone-shared combinatorics cache: one [`StirlingTable`]
/// plus memoized `ln_binomial` rows, both behind `Arc`s so that cloning the
/// handle shares the underlying tables instead of refilling them.
///
/// Every cached value is a pure function of its indices (`ln S(n, m)` and
/// `ln C(n, k)` respectively), and rows are always filled by the same
/// deterministic recurrence regardless of which caller triggers the fill —
/// so answers are bit-identical to the unshared path no matter how reads
/// and fills interleave across threads. That is what lets
/// `BotMeter::chart` hand one handle to every landscape cell under a
/// parallel [`ExecPolicy`] without touching the determinism contract.
///
/// [`ExecPolicy`]: https://docs.rs/botmeter-exec
///
/// # Example
///
/// ```
/// use botmeter_stats::SharedStirling;
/// let tables = SharedStirling::new();
/// let other = tables.clone(); // shares, does not copy
/// assert!((tables.ln_stirling2(4, 2) - 7f64.ln()).abs() < 1e-12);
/// // The clone sees the row the first handle filled.
/// assert!(other.stirling_rows_filled() >= 5);
/// let row = tables.ln_binomial_row(10);
/// assert!((row[3] - 120f64.ln()).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SharedStirling {
    stirling: Arc<RwLock<StirlingTable>>,
    binomial_rows: Arc<RwLock<HashMap<u64, Arc<Vec<f64>>>>>,
}

impl SharedStirling {
    /// A fresh, empty cache.
    pub fn new() -> Self {
        SharedStirling::default()
    }

    /// `ln S(n, m)` — the shared equivalent of
    /// [`StirlingTable::ln_stirling2`]. Reads take a shared lock; only a
    /// miss upgrades to the write lock to extend the triangle.
    pub fn ln_stirling2(&self, n: u64, m: u64) -> f64 {
        {
            let table = self.stirling.read().unwrap_or_else(PoisonError::into_inner);
            if let Some(v) = table.peek(n, m) {
                return v;
            }
        }
        let mut table = self
            .stirling
            .write()
            .unwrap_or_else(PoisonError::into_inner);
        table.ln_stirling2(n, m)
    }

    /// The full Stirling row `[ln S(n, 0), …, ln S(n, n)]`, filling the
    /// triangle up to `n` on first use. One shared-lock acquisition hands
    /// back the whole row, so hot loops that need `ln S(n, m)` for every
    /// `m` (the Theorem-1 occupancy sum) index a plain slice instead of
    /// paying a lock per `(n, m)` pair. Values are identical to
    /// [`ln_stirling2`](Self::ln_stirling2) entry by entry.
    pub fn ln_stirling2_row(&self, n: u64) -> Arc<Vec<f64>> {
        {
            let table = self.stirling.read().unwrap_or_else(PoisonError::into_inner);
            if let Some(row) = table.peek_row(n) {
                return row;
            }
        }
        let mut table = self
            .stirling
            .write()
            .unwrap_or_else(PoisonError::into_inner);
        table.row(n)
    }

    /// The full row `[ln C(n, 0), …, ln C(n, n)]`, memoized per `n`. Rows
    /// are computed with [`ln_binomial`] entry by entry, so the cached
    /// values are bit-identical to calling the free function directly.
    pub fn ln_binomial_row(&self, n: u64) -> Arc<Vec<f64>> {
        {
            let rows = self
                .binomial_rows
                .read()
                .unwrap_or_else(PoisonError::into_inner);
            if let Some(row) = rows.get(&n) {
                return Arc::clone(row);
            }
        }
        // Compute outside any lock; a racing fill of the same row produces
        // the identical vector, so last-writer-wins is harmless.
        let row: Arc<Vec<f64>> = Arc::new((0..=n).map(|k| ln_binomial(n, k)).collect());
        let mut rows = self
            .binomial_rows
            .write()
            .unwrap_or_else(PoisonError::into_inner);
        Arc::clone(rows.entry(n).or_insert(row))
    }

    /// Rows of the Stirling triangle currently materialised.
    pub fn stirling_rows_filled(&self) -> usize {
        self.stirling
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .rows_filled()
    }

    /// Distinct `ln_binomial` rows currently memoized.
    pub fn binomial_rows_cached(&self) -> usize {
        self.binomial_rows
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exact small values via the u128 recurrence, for cross-checking.
    fn exact(n: usize, m: usize) -> u128 {
        let mut rows: Vec<Vec<u128>> = vec![vec![1]];
        for r in 1..=n {
            let prev = &rows[r - 1];
            let mut row = vec![0u128; r + 1];
            for k in 1..=r {
                let carry = if k < prev.len() { prev[k] } else { 0 };
                let diag = prev[k - 1];
                row[k] = (k as u128) * carry + diag;
            }
            rows.push(row);
        }
        if m <= n {
            rows[n][m]
        } else {
            0
        }
    }

    #[test]
    fn matches_exact_small_triangle() {
        let mut t = StirlingTable::new();
        for n in 0u64..=25 {
            for m in 0u64..=n {
                let want = exact(n as usize, m as usize);
                let got = t.ln_stirling2(n, m);
                if want == 0 {
                    assert_eq!(got, f64::NEG_INFINITY, "S({n},{m}) should be 0");
                } else {
                    let w = (want as f64).ln();
                    assert!(
                        (got - w).abs() < 1e-9 * (1.0 + w.abs()),
                        "S({n},{m}): got ln {got}, want ln {w}"
                    );
                }
            }
        }
    }

    #[test]
    fn known_values() {
        let mut t = StirlingTable::new();
        assert!((t.stirling2(5, 3) - 25.0).abs() < 1e-9);
        assert!((t.stirling2(6, 3) - 90.0).abs() < 1e-9);
        assert!((t.stirling2(7, 4) - 350.0).abs() < 1e-7);
    }

    #[test]
    fn zero_cases() {
        let mut t = StirlingTable::new();
        assert_eq!(t.ln_stirling2(3, 5), f64::NEG_INFINITY);
        assert_eq!(t.ln_stirling2(4, 0), f64::NEG_INFINITY);
        assert_eq!(t.ln_stirling2(0, 0), 0.0);
    }

    #[test]
    fn large_rows_stay_finite() {
        let mut t = StirlingTable::new();
        // S(500, 250) overflows f64 massively; log value must be finite.
        let v = t.ln_stirling2(500, 250);
        assert!(v.is_finite() && v > 0.0);
    }

    #[test]
    fn cache_is_incremental() {
        let mut t = StirlingTable::new();
        t.ln_stirling2(10, 5);
        assert_eq!(t.rows_filled(), 11);
        t.ln_stirling2(4, 2);
        assert_eq!(t.rows_filled(), 11, "smaller query must not shrink/refill");
        t.ln_stirling2(12, 12);
        assert_eq!(t.rows_filled(), 13);
    }

    #[test]
    fn peek_only_answers_filled_rows() {
        let mut t = StirlingTable::new();
        assert_eq!(t.peek(2, 5), Some(f64::NEG_INFINITY), "zero case is free");
        assert_eq!(t.peek(4, 2), None, "unfilled row");
        let filled = t.ln_stirling2(4, 2);
        assert_eq!(t.peek(4, 2), Some(filled));
    }

    #[test]
    fn shared_matches_owned_table_bit_for_bit() {
        let shared = SharedStirling::new();
        let mut owned = StirlingTable::new();
        // Query in a scrambled order to show fill order is irrelevant.
        for &(n, m) in &[(30u64, 7u64), (5, 2), (60, 60), (12, 0), (45, 13)] {
            assert_eq!(shared.ln_stirling2(n, m), owned.ln_stirling2(n, m));
        }
        assert_eq!(shared.stirling_rows_filled(), owned.rows_filled());
    }

    #[test]
    fn shared_binomial_rows_match_free_function() {
        let shared = SharedStirling::new();
        let row = shared.ln_binomial_row(25);
        assert_eq!(row.len(), 26);
        for k in 0..=25u64 {
            assert_eq!(row[k as usize], ln_binomial(25, k));
        }
        // Second request hits the cache (same allocation).
        assert!(Arc::ptr_eq(&row, &shared.ln_binomial_row(25)));
        assert_eq!(shared.binomial_rows_cached(), 1);
    }

    #[test]
    fn shared_clones_share_fills_across_threads() {
        let shared = SharedStirling::new();
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let tables = shared.clone();
                std::thread::spawn(move || tables.ln_stirling2(80 + i, 10))
            })
            .collect();
        let mut reference = StirlingTable::new();
        for (i, h) in handles.into_iter().enumerate() {
            let got = h.join().expect("no panic");
            assert_eq!(got, reference.ln_stirling2(80 + i as u64, 10));
        }
        assert_eq!(shared.stirling_rows_filled(), 84);
    }

    #[test]
    fn row_sum_equals_bell_number() {
        // Σ_m S(n,m) = Bell(n). Bell(10) = 115975.
        let mut t = StirlingTable::new();
        let mut acc = crate::special::LogSumAcc::new();
        for m in 0..=10 {
            acc.add(t.ln_stirling2(10, m));
        }
        assert!((acc.value() - 115_975f64.ln()).abs() < 1e-9);
    }
}
