//! Descriptive statistics: means, variances, percentiles and five-number
//! summaries used by the experiment harness to build the paper's error-bar
//! plots (25th–75th percentile of absolute relative error).

use crate::kahan::KahanSum;
use serde::{Deserialize, Serialize};

/// Arithmetic mean of a slice; `0.0` for an empty slice.
///
/// # Example
///
/// ```
/// assert_eq!(botmeter_stats::mean(&[1.0, 3.0]), 2.0);
/// ```
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let s: KahanSum = xs.iter().copied().collect();
    s.value() / xs.len() as f64
}

/// Sample variance (Bessel-corrected); `0.0` for fewer than two points.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let mut acc = KahanSum::new();
    for &x in xs {
        acc.add((x - m) * (x - m));
    }
    acc.value() / (xs.len() - 1) as f64
}

/// Sample standard deviation; `0.0` for fewer than two points.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Percentile with linear interpolation between order statistics
/// (the "exclusive-free" R-7 definition used by most plotting stacks).
///
/// `p` is in `[0, 100]`.
///
/// # Panics
///
/// Panics if `xs` is empty or `p` outside `[0, 100]`.
///
/// # Example
///
/// ```
/// let v = botmeter_stats::percentile(&[1.0, 2.0, 3.0, 4.0], 50.0);
/// assert_eq!(v, 2.5);
/// ```
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    assert!(!xs.is_empty(), "percentile of empty slice");
    assert!((0.0..=100.0).contains(&p), "p must be in [0, 100], got {p}");
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    percentile_sorted(&sorted, p)
}

fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let h = (p / 100.0) * (n - 1) as f64;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        sorted[lo] + (h - lo as f64) * (sorted[hi] - sorted[lo])
    }
}

/// A five-number-plus summary of a sample: count, mean, standard deviation,
/// min/max and the quartiles the paper's error bars are built from.
///
/// # Example
///
/// ```
/// use botmeter_stats::Summary;
/// let s = Summary::from_slice(&[0.1, 0.2, 0.3, 0.4, 0.5]);
/// assert_eq!(s.median(), 0.3);
/// assert_eq!(s.q25(), 0.2);
/// assert_eq!(s.q75(), 0.4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    count: usize,
    mean: f64,
    std_dev: f64,
    min: f64,
    q25: f64,
    median: f64,
    q75: f64,
    max: f64,
}

impl Summary {
    /// Builds a summary from a sample.
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty.
    pub fn from_slice(xs: &[f64]) -> Self {
        assert!(!xs.is_empty(), "Summary of empty sample");
        let mut sorted = xs.to_vec();
        sorted.sort_by(f64::total_cmp);
        Summary {
            count: xs.len(),
            mean: mean(xs),
            std_dev: std_dev(xs),
            min: sorted[0],
            q25: percentile_sorted(&sorted, 25.0),
            median: percentile_sorted(&sorted, 50.0),
            q75: percentile_sorted(&sorted, 75.0),
            max: *sorted.last().expect("non-empty"),
        }
    }

    /// Number of observations.
    pub fn count(&self) -> usize {
        self.count
    }
    /// Arithmetic mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }
    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }
    /// Minimum.
    pub fn min(&self) -> f64 {
        self.min
    }
    /// 25th percentile (lower edge of the paper's error bars).
    pub fn q25(&self) -> f64 {
        self.q25
    }
    /// Median.
    pub fn median(&self) -> f64 {
        self.median
    }
    /// 75th percentile (upper edge of the paper's error bars).
    pub fn q75(&self) -> f64 {
        self.q75
    }
    /// Maximum.
    pub fn max(&self) -> f64 {
        self.max
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:.4} sd={:.4} min={:.4} q25={:.4} med={:.4} q75={:.4} max={:.4}",
            self.count,
            self.mean,
            self.std_dev,
            self.min,
            self.q25,
            self.median,
            self.q75,
            self.max
        )
    }
}

/// Welford online accumulator for mean/variance without storing the sample.
///
/// # Example
///
/// ```
/// use botmeter_stats::OnlineMoments;
/// let mut m = OnlineMoments::new();
/// for x in [2.0, 4.0, 6.0] {
///     m.push(x);
/// }
/// assert_eq!(m.mean(), 4.0);
/// assert_eq!(m.variance(), 4.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OnlineMoments {
    n: u64,
    mean: f64,
    m2: f64,
}

impl OnlineMoments {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Running mean (`0.0` when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Bessel-corrected sample variance (`0.0` with fewer than two points).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }
}

impl Extend<f64> for OnlineMoments {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_empty_and_single() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[7.0]), 7.0);
    }

    #[test]
    fn variance_known() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        // population var 4.0 => sample var 4.0 * 8/7
        assert!((variance(&xs) - 32.0 / 7.0).abs() < 1e-12);
        assert!((std_dev(&xs) - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn variance_degenerate() {
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(variance(&[3.0]), 0.0);
    }

    #[test]
    fn percentile_endpoints() {
        let xs = [5.0, 1.0, 3.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 5.0);
        assert_eq!(percentile(&xs, 50.0), 3.0);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [10.0, 20.0, 30.0, 40.0];
        assert!((percentile(&xs, 25.0) - 17.5).abs() < 1e-12);
        assert!((percentile(&xs, 75.0) - 32.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_empty_panics() {
        percentile(&[], 50.0);
    }

    #[test]
    #[should_panic(expected = "must be in [0, 100]")]
    fn percentile_bad_p_panics() {
        percentile(&[1.0], 101.0);
    }

    #[test]
    fn summary_fields_consistent() {
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = Summary::from_slice(&xs);
        assert_eq!(s.count(), 100);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 100.0);
        assert!((s.mean() - 50.5).abs() < 1e-12);
        assert!((s.median() - 50.5).abs() < 1e-12);
        assert!(s.q25() < s.median() && s.median() < s.q75());
    }

    #[test]
    fn summary_display_nonempty() {
        let s = Summary::from_slice(&[1.0]);
        let text = s.to_string();
        assert!(text.contains("n=1"));
    }

    #[test]
    fn summary_serde_roundtrip() {
        let s = Summary::from_slice(&[1.0, 2.0, 3.0]);
        let json = serde_json::to_string(&s).unwrap();
        let back: Summary = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn online_moments_match_batch() {
        let xs = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let mut m = OnlineMoments::new();
        m.extend(xs.iter().copied());
        assert!((m.mean() - mean(&xs)).abs() < 1e-12);
        assert!((m.variance() - variance(&xs)).abs() < 1e-12);
        assert_eq!(m.count(), xs.len() as u64);
    }

    #[test]
    fn online_moments_empty() {
        let m = OnlineMoments::new();
        assert_eq!(m.mean(), 0.0);
        assert_eq!(m.variance(), 0.0);
        assert_eq!(m.std_dev(), 0.0);
    }
}
