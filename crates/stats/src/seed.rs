//! Deterministic seed derivation.
//!
//! Parameter sweeps in the BotMeter benchmarks run thousands of trials, each
//! of which must be (a) statistically independent of its siblings and
//! (b) exactly reproducible from a single base seed. [`SeedSequence`]
//! provides both by hashing `(base, label...)` tuples through the SplitMix64
//! finalizer, whose output is a high-quality 64-bit mix.

/// The SplitMix64 finalizer: a fast, well-distributed 64-bit mixing function.
///
/// # Example
///
/// ```
/// let a = botmeter_stats::mix64(1);
/// let b = botmeter_stats::mix64(2);
/// assert_ne!(a, b);
/// ```
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A hierarchical seed deriver.
///
/// A `SeedSequence` is a base seed plus a path of stream labels; each
/// [`fork`](Self::fork) extends the path, and [`seed`](Self::seed) collapses
/// the path into a 64-bit seed. Sibling forks produce unrelated seeds.
///
/// # Example
///
/// ```
/// use botmeter_stats::SeedSequence;
/// let root = SeedSequence::new(42);
/// let s1 = root.fork(0).seed();
/// let s2 = root.fork(1).seed();
/// assert_ne!(s1, s2);
/// // Reproducible:
/// assert_eq!(s1, SeedSequence::new(42).fork(0).seed());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SeedSequence {
    state: u64,
}

impl SeedSequence {
    /// Creates a root sequence from a base seed.
    pub fn new(base: u64) -> Self {
        SeedSequence { state: mix64(base) }
    }

    /// Derives a child sequence for stream `label`.
    #[must_use]
    pub fn fork(&self, label: u64) -> Self {
        SeedSequence {
            state: mix64(self.state ^ mix64(label.wrapping_add(0xA5A5_A5A5_A5A5_A5A5))),
        }
    }

    /// Derives a child sequence from a string label (e.g. a DGA family name).
    #[must_use]
    pub fn fork_str(&self, label: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
        for &b in label.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        self.fork(h)
    }

    /// The 64-bit seed at this node.
    pub fn seed(&self) -> u64 {
        mix64(self.state)
    }

    /// 32 bytes of seed material, as expected by `rand::SeedableRng`
    /// implementations with `[u8; 32]` seeds (e.g. ChaCha).
    pub fn seed_bytes(&self) -> [u8; 32] {
        let mut out = [0u8; 32];
        let mut s = self.state;
        for chunk in out.chunks_mut(8) {
            s = mix64(s);
            chunk.copy_from_slice(&s.to_le_bytes());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn mix64_bijective_sample() {
        // No collisions over a contiguous block (a bijection can't collide).
        let mut seen = HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(mix64(i)));
        }
    }

    #[test]
    fn forks_are_distinct_and_stable() {
        let root = SeedSequence::new(7);
        let mut seen = HashSet::new();
        for i in 0..1000 {
            assert!(seen.insert(root.fork(i).seed()), "fork {i} collided");
        }
        assert_eq!(root.fork(3).seed(), SeedSequence::new(7).fork(3).seed());
    }

    #[test]
    fn nested_forks_differ_from_flat() {
        let root = SeedSequence::new(1);
        assert_ne!(root.fork(1).fork(2).seed(), root.fork(2).fork(1).seed());
        assert_ne!(root.fork(1).fork(2).seed(), root.fork(1).seed());
    }

    #[test]
    fn string_forks() {
        let root = SeedSequence::new(9);
        assert_ne!(
            root.fork_str("newgoz").seed(),
            root.fork_str("ramnit").seed()
        );
        assert_eq!(
            root.fork_str("newgoz").seed(),
            root.fork_str("newgoz").seed()
        );
    }

    #[test]
    fn seed_bytes_vary_per_chunk() {
        let b = SeedSequence::new(5).seed_bytes();
        assert_ne!(&b[0..8], &b[8..16]);
        assert_ne!(&b[8..16], &b[16..24]);
    }
}
