//! Random-variate samplers implemented from first principles.
//!
//! The simulator needs exponential inter-arrival times (Poisson processes),
//! normal draws (the σ-modulated activation-rate experiment of Fig. 6(d)),
//! Poisson counts, log-normal rates and Zipf-distributed benign domain
//! popularity. Each sampler is a small value type with an explicit
//! constructor that validates its parameters, and samples from any
//! caller-provided [`rand::Rng`].

use rand::Rng;

/// Types that can draw an `f64` variate from an RNG.
pub trait SampleF64 {
    /// Draws one sample.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64;
}

/// Types that can draw a `u64` variate from an RNG.
pub trait SampleU64 {
    /// Draws one sample.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64;
}

/// Exponential distribution with rate `lambda` (mean `1/lambda`).
///
/// # Example
///
/// ```
/// use botmeter_stats::{Exponential, SampleF64};
/// use rand::SeedableRng;
/// let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(1);
/// let exp = Exponential::new(2.0).unwrap();
/// let x = exp.sample(&mut rng);
/// assert!(x >= 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    lambda: f64,
}

impl Exponential {
    /// Creates the distribution.
    ///
    /// # Errors
    ///
    /// Returns `Err` if `lambda` is not finite and strictly positive.
    pub fn new(lambda: f64) -> Result<Self, ParamError> {
        if !(lambda.is_finite() && lambda > 0.0) {
            return Err(ParamError::new("exponential rate must be finite and > 0"));
        }
        Ok(Exponential { lambda })
    }

    /// The rate parameter.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }
}

impl SampleF64 for Exponential {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Inverse CDF; gen::<f64>() is in [0,1), so 1-u is in (0,1].
        let u: f64 = rng.gen();
        -(1.0 - u).ln() / self.lambda
    }
}

/// Normal distribution `N(mu, sigma^2)` via the Marsaglia polar method.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mu: f64,
    sigma: f64,
}

impl Normal {
    /// Creates the distribution.
    ///
    /// # Errors
    ///
    /// Returns `Err` if `sigma < 0` or either parameter is non-finite.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, ParamError> {
        if !(mu.is_finite() && sigma.is_finite() && sigma >= 0.0) {
            return Err(ParamError::new("normal requires finite mu and sigma >= 0"));
        }
        Ok(Normal { mu, sigma })
    }

    /// Standard normal, `N(0, 1)`.
    pub fn standard() -> Self {
        Normal {
            mu: 0.0,
            sigma: 1.0,
        }
    }
}

impl SampleF64 for Normal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.sigma == 0.0 {
            return self.mu;
        }
        loop {
            let u: f64 = rng.gen_range(-1.0..1.0);
            let v: f64 = rng.gen_range(-1.0..1.0);
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let factor = (-2.0 * s.ln() / s).sqrt();
                return self.mu + self.sigma * u * factor;
            }
        }
    }
}

/// Log-normal distribution: `exp(N(mu, sigma^2))`.
///
/// Used for the dynamic activation-rate multiplier `e^{κ}`, `κ ~ N(0, σ²)`
/// in the paper's Fig. 6(d) experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    normal: Normal,
}

impl LogNormal {
    /// Creates the distribution of `exp(N(mu, sigma^2))`.
    ///
    /// # Errors
    ///
    /// Same domain requirements as [`Normal::new`].
    pub fn new(mu: f64, sigma: f64) -> Result<Self, ParamError> {
        Ok(LogNormal {
            normal: Normal::new(mu, sigma)?,
        })
    }
}

impl SampleF64 for LogNormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.normal.sample(rng).exp()
    }
}

/// Poisson distribution with mean `lambda`.
///
/// Knuth's multiplication method for `lambda <= 30`; for larger means, a
/// normal approximation with continuity correction (the harness only uses
/// large-λ draws for background-traffic volume, where a 0.1% error in shape
/// is irrelevant).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poisson {
    lambda: f64,
}

impl Poisson {
    /// Creates the distribution.
    ///
    /// # Errors
    ///
    /// Returns `Err` if `lambda` is not finite and strictly positive.
    pub fn new(lambda: f64) -> Result<Self, ParamError> {
        if !(lambda.is_finite() && lambda > 0.0) {
            return Err(ParamError::new("poisson mean must be finite and > 0"));
        }
        Ok(Poisson { lambda })
    }
}

impl SampleU64 for Poisson {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.lambda <= 30.0 {
            let limit = (-self.lambda).exp();
            let mut product: f64 = rng.gen();
            let mut count = 0u64;
            while product > limit {
                product *= rng.gen::<f64>();
                count += 1;
            }
            count
        } else {
            let n = Normal::new(self.lambda, self.lambda.sqrt()).expect("valid by construction");
            let x = n.sample(rng) + 0.5;
            if x < 0.0 {
                0
            } else {
                x as u64
            }
        }
    }
}

/// Bernoulli distribution returning `true` with probability `p`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bernoulli {
    p: f64,
}

impl Bernoulli {
    /// Creates the distribution.
    ///
    /// # Errors
    ///
    /// Returns `Err` unless `0 <= p <= 1`.
    pub fn new(p: f64) -> Result<Self, ParamError> {
        if !(p.is_finite() && (0.0..=1.0).contains(&p)) {
            return Err(ParamError::new("bernoulli p must be in [0, 1]"));
        }
        Ok(Bernoulli { p })
    }

    /// Draws one trial.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.gen::<f64>() < self.p
    }
}

/// Zipf distribution on `{1, ..., n}` with exponent `s`, sampled by
/// inversion against a precomputed CDF.
///
/// Models the popularity ranking of benign domains in the enterprise
/// background-traffic generator. `n` is bounded (a domain catalog), so an
/// explicit CDF plus binary search is simple and exact.
#[derive(Debug, Clone, PartialEq)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates a Zipf distribution over ranks `1..=n`.
    ///
    /// # Errors
    ///
    /// Returns `Err` if `n == 0` or `s` is not finite and non-negative.
    pub fn new(n: usize, s: f64) -> Result<Self, ParamError> {
        if n == 0 {
            return Err(ParamError::new("zipf support must be non-empty"));
        }
        if !(s.is_finite() && s >= 0.0) {
            return Err(ParamError::new("zipf exponent must be finite and >= 0"));
        }
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += (k as f64).powf(-s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        // Clamp the final entry to exactly 1.0 against rounding.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Ok(Zipf { cdf })
    }

    /// Number of ranks in the support.
    pub fn support(&self) -> usize {
        self.cdf.len()
    }
}

impl SampleU64 for Zipf {
    /// Samples a rank in `1..=n`.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen();
        let idx = self.cdf.partition_point(|&c| c < u);
        (idx.min(self.cdf.len() - 1) + 1) as u64
    }
}

/// Invalid distribution parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamError {
    msg: &'static str,
}

impl ParamError {
    fn new(msg: &'static str) -> Self {
        ParamError { msg }
    }
}

impl std::fmt::Display for ParamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.msg)
    }
}

impl std::error::Error for ParamError {}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    fn rng(seed: u64) -> ChaCha12Rng {
        ChaCha12Rng::seed_from_u64(seed)
    }

    #[test]
    fn exponential_mean_close() {
        let d = Exponential::new(4.0).unwrap();
        let mut r = rng(1);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut r)).sum::<f64>() / n as f64;
        assert!((mean - 0.25).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn exponential_rejects_bad_rate() {
        assert!(Exponential::new(0.0).is_err());
        assert!(Exponential::new(-1.0).is_err());
        assert!(Exponential::new(f64::NAN).is_err());
    }

    #[test]
    fn normal_moments() {
        let d = Normal::new(3.0, 2.0).unwrap();
        let mut r = rng(2);
        let n = 100_000;
        let xs: Vec<f64> = (0..n).map(|_| d.sample(&mut r)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn normal_zero_sigma_is_constant() {
        let d = Normal::new(5.0, 0.0).unwrap();
        let mut r = rng(3);
        for _ in 0..10 {
            assert_eq!(d.sample(&mut r), 5.0);
        }
    }

    #[test]
    fn lognormal_median() {
        // Median of exp(N(mu, s^2)) is exp(mu).
        let d = LogNormal::new(1.0, 0.75).unwrap();
        let mut r = rng(4);
        let n = 50_000;
        let mut xs: Vec<f64> = (0..n).map(|_| d.sample(&mut r)).collect();
        xs.sort_by(f64::total_cmp);
        let median = xs[n / 2];
        assert!(
            (median - std::f64::consts::E).abs() < 0.1,
            "median {median}"
        );
    }

    #[test]
    fn poisson_small_lambda_mean_var() {
        let d = Poisson::new(3.5).unwrap();
        let mut r = rng(5);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| d.sample(&mut r) as f64).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.5).abs() < 0.06, "mean {mean}");
        assert!((var - 3.5).abs() < 0.15, "var {var}");
    }

    #[test]
    fn poisson_large_lambda_mean() {
        let d = Poisson::new(500.0).unwrap();
        let mut r = rng(6);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut r) as f64).sum::<f64>() / n as f64;
        assert!((mean - 500.0).abs() < 2.0, "mean {mean}");
    }

    #[test]
    fn bernoulli_frequency() {
        let d = Bernoulli::new(0.3).unwrap();
        let mut r = rng(7);
        let n = 100_000;
        let hits = (0..n).filter(|_| d.sample(&mut r)).count();
        let freq = hits as f64 / n as f64;
        assert!((freq - 0.3).abs() < 0.01, "freq {freq}");
    }

    #[test]
    fn bernoulli_bounds() {
        assert!(Bernoulli::new(-0.1).is_err());
        assert!(Bernoulli::new(1.1).is_err());
        let always = Bernoulli::new(1.0).unwrap();
        let never = Bernoulli::new(0.0).unwrap();
        let mut r = rng(8);
        assert!(always.sample(&mut r));
        assert!(!never.sample(&mut r));
    }

    #[test]
    fn zipf_rank_ordering() {
        let d = Zipf::new(100, 1.0).unwrap();
        let mut r = rng(9);
        let n = 200_000;
        let mut counts = vec![0u64; 101];
        for _ in 0..n {
            counts[d.sample(&mut r) as usize] += 1;
        }
        // Rank 1 must dominate rank 10 roughly 10:1 under s = 1.
        let ratio = counts[1] as f64 / counts[10] as f64;
        assert!((ratio - 10.0).abs() < 2.0, "ratio {ratio}");
        // All mass within support.
        assert_eq!(counts[0], 0);
    }

    #[test]
    fn zipf_uniform_when_s_zero() {
        let d = Zipf::new(4, 0.0).unwrap();
        let mut r = rng(10);
        let n = 40_000;
        let mut counts = [0u64; 5];
        for _ in 0..n {
            counts[d.sample(&mut r) as usize] += 1;
        }
        for (k, &count) in counts.iter().enumerate().skip(1) {
            let f = count as f64 / n as f64;
            assert!((f - 0.25).abs() < 0.02, "rank {k}: {f}");
        }
    }

    #[test]
    fn zipf_rejects_empty_support() {
        assert!(Zipf::new(0, 1.0).is_err());
        assert!(Zipf::new(10, -1.0).is_err());
    }

    #[test]
    fn param_error_displays() {
        let e = Exponential::new(0.0).unwrap_err();
        assert!(e.to_string().contains("exponential"));
    }
}
