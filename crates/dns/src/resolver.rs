//! A single caching-forwarding DNS resolver node.

use crate::authority::{Answer, Authority};
use crate::cache::{CacheStats, DnsCache};
use crate::name::DomainName;
use crate::record::ServerId;
use crate::time::SimInstant;
use crate::ttl::TtlPolicy;

/// One caching-forwarding DNS server (a "local DNS server" in Fig. 1 of the
/// paper).
///
/// Given a lookup, the resolver first consults its cache; only on a miss
/// does it "forward" the query — here modelled as asking an [`Authority`]
/// directly — and then caches the response under the configured
/// [`TtlPolicy`].
///
/// For multi-level hierarchies, use [`Topology`](crate::Topology), which
/// chains per-node caches; `LocalResolver` is the single-node building block
/// and is convenient in unit tests and microbenchmarks.
///
/// # Example
///
/// ```
/// use botmeter_dns::{LocalResolver, ServerId, SimInstant, StaticAuthority, TtlPolicy};
/// let mut r = LocalResolver::new(ServerId(1), TtlPolicy::paper_default());
/// let auth = StaticAuthority::empty();
/// let d = "nx.example".parse()?;
/// let (_, forwarded) = r.process(SimInstant::ZERO, &d, &auth);
/// assert!(forwarded, "first lookup always forwarded");
/// let (_, forwarded) = r.process(SimInstant::from_millis(1), &d, &auth);
/// assert!(!forwarded, "second lookup absorbed by negative cache");
/// # Ok::<(), botmeter_dns::ParseDomainError>(())
/// ```
#[derive(Debug, Clone)]
pub struct LocalResolver {
    id: ServerId,
    cache: DnsCache,
    ttl: TtlPolicy,
}

impl LocalResolver {
    /// Creates a resolver with an empty cache.
    pub fn new(id: ServerId, ttl: TtlPolicy) -> Self {
        LocalResolver {
            id,
            cache: DnsCache::new(),
            ttl,
        }
    }

    /// This resolver's identifier.
    pub fn id(&self) -> ServerId {
        self.id
    }

    /// The TTL policy in force.
    pub fn ttl(&self) -> TtlPolicy {
        self.ttl
    }

    /// Handles one client lookup at time `t`.
    ///
    /// Returns the answer and whether the lookup was **forwarded** (i.e.
    /// missed the cache and would be visible one level up).
    pub fn process<A: Authority>(
        &mut self,
        t: SimInstant,
        domain: &DomainName,
        authority: A,
    ) -> (Answer, bool) {
        if let Some(hit) = self.cache.lookup(t, domain) {
            return (hit.answer, false);
        }
        let answer = authority.resolve(t, domain);
        self.cache.store(t, domain.clone(), answer, &self.ttl);
        (answer, true)
    }

    /// Cache statistics accumulated so far.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Number of live-or-stale entries in the cache.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Clears the cache (epoch reset in tests).
    pub fn clear_cache(&mut self) {
        self.cache.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::authority::StaticAuthority;
    use crate::time::SimDuration;

    fn d(s: &str) -> DomainName {
        s.parse().unwrap()
    }

    #[test]
    fn forwards_on_miss_absorbs_on_hit() {
        let mut r = LocalResolver::new(ServerId(3), TtlPolicy::paper_default());
        let auth = StaticAuthority::from_domains([d("c2.example")]);
        let t = SimInstant::ZERO;

        let (a1, f1) = r.process(t, &d("c2.example"), &auth);
        assert!(a1.is_positive() && f1);
        let (a2, f2) = r.process(t + SimDuration::from_hours(5), &d("c2.example"), &auth);
        assert!(a2.is_positive() && !f2, "positive cache lives a day");

        let (a3, f3) = r.process(t, &d("nx.example"), &auth);
        assert!(!a3.is_positive() && f3);
        let (_, f4) = r.process(t + SimDuration::from_hours(1), &d("nx.example"), &auth);
        assert!(!f4, "negative cache lives two hours");
        let (_, f5) = r.process(t + SimDuration::from_hours(3), &d("nx.example"), &auth);
        assert!(f5, "negative entry expired, forwarded again");
    }

    #[test]
    fn id_and_stats_accessors() {
        let mut r = LocalResolver::new(ServerId(7), TtlPolicy::paper_default());
        assert_eq!(r.id(), ServerId(7));
        let auth = StaticAuthority::empty();
        r.process(SimInstant::ZERO, &d("a.example"), &auth);
        r.process(SimInstant::from_millis(5), &d("a.example"), &auth);
        let s = r.cache_stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits(), 1);
        assert_eq!(r.cache_len(), 1);
        r.clear_cache();
        assert_eq!(r.cache_len(), 0);
    }
}
