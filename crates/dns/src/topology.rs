//! Hierarchical DNS topologies: a tree of caching resolvers with the border
//! server as vantage point (Fig. 1 of the paper).
//!
//! A lookup issued by a client walks up from its local resolver towards the
//! border. Any non-expired cache entry along the way absorbs it (it becomes
//! invisible). If it reaches the border, it is recorded as an
//! [`ObservedLookup`] attributed to the *last forwarding server* — exactly
//! the `⟨t, s, d⟩` tuple BotMeter consumes — and the authoritative answer is
//! then cached at every node along the path.

use crate::authority::{Answer, Authority};
use crate::cache::{CacheStats, DnsCache};
use crate::name::DomainName;
use crate::record::{
    ClientId, CompactLookup, CompactObserved, ObservedLookup, RawLookup, ServerId,
};
use crate::time::SimInstant;
use crate::ttl::TtlPolicy;
use botmeter_exec::ExecPolicy;
use botmeter_obs::Obs;
use std::collections::HashMap;
use std::fmt;

/// Identifier of the border (root) server in every topology.
const BORDER: ServerId = ServerId(0);

#[derive(Debug, Clone)]
struct Node {
    parent: Option<ServerId>,
    cache: DnsCache,
}

/// Errors from topology construction or client routing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// Referenced a server id that does not exist.
    UnknownServer(ServerId),
    /// Tried to attach clients to (or parent a node under) the border in an
    /// unsupported way.
    BorderNotALeaf,
    /// A lookup arrived from a client with no assigned resolver and no
    /// default leaf is configured.
    UnroutedClient(ClientId),
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::UnknownServer(s) => write!(f, "unknown server {s}"),
            TopologyError::BorderNotALeaf => {
                write!(f, "the border server cannot serve clients directly")
            }
            TopologyError::UnroutedClient(c) => {
                write!(f, "no resolver assigned for {c} and no default leaf set")
            }
        }
    }
}

impl std::error::Error for TopologyError {}

/// Builder for [`Topology`]. The border server (id 0) always exists.
///
/// # Example
///
/// ```
/// use botmeter_dns::{TopologyBuilder, TtlPolicy};
/// let mut b = TopologyBuilder::new(TtlPolicy::paper_default());
/// let site_a = b.add_resolver_under_border();
/// let site_b = b.add_resolver_under_border();
/// let floor = b.add_resolver(site_a)?; // a second caching level
/// let mut topo = b.build();
/// topo.set_default_leaf(site_b)?;
/// assert_eq!(topo.local_servers().len(), 3);
/// # let _ = floor;
/// # Ok::<(), botmeter_dns::TopologyError>(())
/// ```
#[derive(Debug, Clone)]
pub struct TopologyBuilder {
    ttl: TtlPolicy,
    nodes: Vec<Node>,
}

impl TopologyBuilder {
    /// Starts a topology containing only the border server.
    pub fn new(ttl: TtlPolicy) -> Self {
        TopologyBuilder {
            ttl,
            nodes: vec![Node {
                parent: None,
                cache: DnsCache::new(),
            }],
        }
    }

    /// Adds a resolver forwarding directly to the border; returns its id.
    pub fn add_resolver_under_border(&mut self) -> ServerId {
        self.add_resolver(BORDER).expect("border always exists")
    }

    /// Adds a resolver forwarding to `parent`.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::UnknownServer`] if `parent` was never
    /// created.
    pub fn add_resolver(&mut self, parent: ServerId) -> Result<ServerId, TopologyError> {
        if parent.0 as usize >= self.nodes.len() {
            return Err(TopologyError::UnknownServer(parent));
        }
        let id = ServerId(self.nodes.len() as u32);
        self.nodes.push(Node {
            parent: Some(parent),
            cache: DnsCache::new(),
        });
        Ok(id)
    }

    /// Finalises the topology.
    pub fn build(self) -> Topology {
        Topology {
            ttl: self.ttl,
            nodes: self.nodes,
            client_map: HashMap::new(),
            default_leaf: None,
            obs: Obs::noop(),
        }
    }
}

/// A tree of caching resolvers rooted at the border vantage point.
///
/// See the crate-level documentation for the forwarding model.
///
/// # Example
///
/// ```
/// use botmeter_dns::{
///     ClientId, RawLookup, SimInstant, StaticAuthority, Topology, TtlPolicy,
/// };
/// let mut topo = Topology::single_local(TtlPolicy::paper_default());
/// let auth = StaticAuthority::empty();
/// let raw = RawLookup::new(SimInstant::ZERO, ClientId(1), "nx.example".parse()?);
///
/// // First lookup reaches the border ...
/// assert!(topo.process(&raw, &auth)?.is_some());
/// // ... an identical one a moment later is absorbed by the local cache.
/// let raw2 = RawLookup::new(SimInstant::from_millis(10), ClientId(2), "nx.example".parse()?);
/// assert!(topo.process(&raw2, &auth)?.is_none());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Topology {
    ttl: TtlPolicy,
    nodes: Vec<Node>,
    client_map: HashMap<ClientId, ServerId>,
    default_leaf: Option<ServerId>,
    obs: Obs,
}

impl Topology {
    /// The simplest topology in the paper's evaluation: one local resolver
    /// under the border, serving every client by default.
    pub fn single_local(ttl: TtlPolicy) -> Topology {
        let mut b = TopologyBuilder::new(ttl);
        let local = b.add_resolver_under_border();
        let mut t = b.build();
        t.set_default_leaf(local).expect("local resolver exists");
        t
    }

    /// A one-level topology with `n` local resolvers under the border
    /// (clients must be assigned, or a default leaf set, before processing).
    pub fn star(ttl: TtlPolicy, n: usize) -> Topology {
        let mut b = TopologyBuilder::new(ttl);
        for _ in 0..n {
            b.add_resolver_under_border();
        }
        b.build()
    }

    /// The border server's id (always `ServerId(0)`).
    pub fn border(&self) -> ServerId {
        BORDER
    }

    /// Ids of all non-border resolvers.
    pub fn local_servers(&self) -> Vec<ServerId> {
        (1..self.nodes.len() as u32).map(ServerId).collect()
    }

    /// Routes every client without an explicit assignment to `leaf`.
    ///
    /// # Errors
    ///
    /// [`TopologyError::UnknownServer`] for a nonexistent id,
    /// [`TopologyError::BorderNotALeaf`] for the border.
    pub fn set_default_leaf(&mut self, leaf: ServerId) -> Result<(), TopologyError> {
        self.check_leaf(leaf)?;
        self.default_leaf = Some(leaf);
        Ok(())
    }

    /// Assigns one client to a specific local resolver.
    ///
    /// # Errors
    ///
    /// Same as [`set_default_leaf`](Self::set_default_leaf).
    pub fn assign_client(&mut self, client: ClientId, leaf: ServerId) -> Result<(), TopologyError> {
        self.check_leaf(leaf)?;
        self.client_map.insert(client, leaf);
        Ok(())
    }

    fn check_leaf(&self, leaf: ServerId) -> Result<(), TopologyError> {
        if leaf == BORDER {
            return Err(TopologyError::BorderNotALeaf);
        }
        if leaf.0 as usize >= self.nodes.len() {
            return Err(TopologyError::UnknownServer(leaf));
        }
        Ok(())
    }

    /// The resolver a client's lookups enter at.
    ///
    /// # Errors
    ///
    /// [`TopologyError::UnroutedClient`] if the client has no assignment
    /// and no default leaf is set.
    pub fn route(&self, client: ClientId) -> Result<ServerId, TopologyError> {
        self.client_map
            .get(&client)
            .copied()
            .or(self.default_leaf)
            .ok_or(TopologyError::UnroutedClient(client))
    }

    /// Processes one raw lookup through the hierarchy.
    ///
    /// Returns `Ok(Some(observed))` if the lookup reached the border (and is
    /// therefore visible to BotMeter), `Ok(None)` if some cache absorbed it.
    ///
    /// # Errors
    ///
    /// [`TopologyError::UnroutedClient`] if the client cannot be routed.
    pub fn process<A: Authority>(
        &mut self,
        raw: &RawLookup,
        authority: A,
    ) -> Result<Option<ObservedLookup>, TopologyError> {
        let entry = self.route(raw.client)?;
        let t = raw.t;

        // Walk up, collecting the path of caches below the border.
        let mut path: Vec<ServerId> = Vec::with_capacity(4);
        let mut current = entry;
        loop {
            if let Some(hit) = self.nodes[current.0 as usize].cache.lookup(t, &raw.domain) {
                let _ = hit;
                return Ok(None); // absorbed below the vantage point
            }
            path.push(current);
            match self.nodes[current.0 as usize].parent {
                Some(parent) if parent == BORDER => break,
                Some(parent) => current = parent,
                None => break, // entry somehow was the border: defensive
            }
        }

        let forwarder = *path.last().expect("path has at least the entry node");
        let observed = ObservedLookup::new(t, forwarder, raw.domain.clone());

        // Resolve at/above the border (the border's own cache does not
        // affect visibility, only upstream traffic, which we don't model).
        let answer = self.resolve_at_border(t, &raw.domain, authority);

        // The response propagates back down; every node on the path caches it.
        for node in path {
            self.nodes[node.0 as usize]
                .cache
                .store(t, raw.domain.clone(), answer, &self.ttl);
        }
        Ok(Some(observed))
    }

    fn resolve_at_border<A: Authority>(
        &mut self,
        t: SimInstant,
        domain: &DomainName,
        authority: A,
    ) -> Answer {
        let border = &mut self.nodes[BORDER.0 as usize];
        if let Some(hit) = border.cache.lookup(t, domain) {
            return hit.answer;
        }
        let answer = authority.resolve(t, domain);
        border.cache.store(t, domain.clone(), answer, &self.ttl);
        answer
    }

    /// Attaches an observability handle; subsequent
    /// [`process_trace`](Self::process_trace) calls report per-server cache
    /// deltas (`cache.s{id}.*`) and border admission counters
    /// (`topology.lookups` / `topology.admitted` / `topology.filtered`)
    /// through it. The default handle is the no-op one.
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// Runs a whole raw trace (assumed time-ordered) through the hierarchy
    /// under `policy` and returns the border-visible sub-trace. Sequential
    /// and parallel policies produce bit-identical output and cache state.
    ///
    /// The parallel path shards the trace by
    /// [`DomainId`](crate::DomainId): cache visibility is a per-domain
    /// property when every cache is unbounded (the simulated topologies),
    /// because entries are domain-keyed and never evicted by other domains'
    /// traffic. All lookups for one domain land in one shard with relative
    /// order preserved, which reproduces the sequential outcome
    /// bit-for-bit; the shards' observed lookups are stitched back into
    /// trace order afterwards, the shards' cache entries and stat deltas
    /// merged into `self`. It falls back to sequential processing when a
    /// capacity-bounded cache is present (evictions couple domains), when
    /// only one worker thread is configured, or when the trace is too short
    /// to be worth sharding.
    ///
    /// # Errors
    ///
    /// Fails if any lookup's client is unroutable. (The parallel path
    /// pre-routes and leaves the caches unchanged on error, whereas
    /// sequential processing stops mid-trace.)
    pub fn process_trace<A: Authority + Copy + Sync>(
        &mut self,
        raws: &[RawLookup],
        authority: A,
        policy: ExecPolicy,
    ) -> Result<Vec<ObservedLookup>, TopologyError> {
        const MIN_PARALLEL_TRACE: usize = 2048;
        let base_stats: Option<Vec<CacheStats>> = self
            .obs
            .enabled()
            .then(|| self.nodes.iter().map(|n| n.cache.stats()).collect());

        let shards = policy.worker_threads();
        let bounded = self.nodes.iter().any(|n| n.cache.capacity().is_some());
        let out = if shards <= 1 || bounded || raws.len() < MIN_PARALLEL_TRACE {
            self.process_trace_seq(raws, authority)?
        } else {
            self.process_trace_sharded(raws, authority, shards)?
        };

        if let Some(base) = base_stats {
            self.push_cache_deltas(&base);
            self.obs.counter_add("topology.lookups", raws.len() as u64);
            self.obs.counter_add("topology.admitted", out.len() as u64);
            self.obs
                .counter_add("topology.filtered", (raws.len() - out.len()) as u64);
        }
        Ok(out)
    }

    fn process_trace_seq<A: Authority + Copy>(
        &mut self,
        raws: &[RawLookup],
        authority: A,
    ) -> Result<Vec<ObservedLookup>, TopologyError> {
        let mut out = Vec::new();
        for raw in raws {
            if let Some(obs) = self.process(raw, authority)? {
                out.push(obs);
            }
        }
        Ok(out)
    }

    fn process_trace_sharded<A: Authority + Copy + Sync>(
        &mut self,
        raws: &[RawLookup],
        authority: A,
        shards: usize,
    ) -> Result<Vec<ObservedLookup>, TopologyError> {
        for raw in raws {
            self.route(raw.client)?;
        }

        let mut parts: Vec<Vec<usize>> = vec![Vec::new(); shards];
        for (i, raw) in raws.iter().enumerate() {
            parts[(raw.domain.id().0 % shards as u64) as usize].push(i);
        }

        let base_stats: Vec<CacheStats> = self.nodes.iter().map(|n| n.cache.stats()).collect();
        let template: &Topology = self;
        let shard_results: Vec<(Topology, Vec<(usize, ObservedLookup)>)> =
            botmeter_exec::run_indexed_with(
                ExecPolicy::with_threads(shards),
                &self.obs,
                shards,
                |s| {
                    let mut topo = template.clone();
                    let mut out = Vec::new();
                    for &i in &parts[s] {
                        let visible = topo
                            .process(&raws[i], authority)
                            .expect("every client pre-routed");
                        if let Some(obs) = visible {
                            out.push((i, obs));
                        }
                    }
                    (topo, out)
                },
            );

        // Stitch observations back into trace order. Each shard's list is
        // already ascending in trace index, so this is a k-way merge; a sort
        // by unique index gives the same result with less code.
        let mut indexed: Vec<(usize, ObservedLookup)> = shard_results
            .iter()
            .flat_map(|(_, obs)| obs.iter().cloned())
            .collect();
        indexed.sort_by_key(|(i, _)| *i);

        for (s, (shard_topo, _)) in shard_results.into_iter().enumerate() {
            for (n, shard_node) in shard_topo.nodes.into_iter().enumerate() {
                let shards = shards as u64;
                self.nodes[n].cache.absorb_shard(
                    shard_node.cache,
                    base_stats[n],
                    move |d: &DomainName| (d.id().0 % shards) as usize == s,
                );
            }
        }
        Ok(indexed.into_iter().map(|(_, obs)| obs).collect())
    }

    /// Pushes the difference between the current per-node cache stats and
    /// `base` into the recorder as `cache.s{id}.*` counters. Batched at
    /// trace-batch boundaries so the per-lookup hot path stays free of
    /// recording calls; only non-zero deltas are pushed.
    fn push_cache_deltas(&self, base: &[CacheStats]) {
        for (n, node) in self.nodes.iter().enumerate() {
            let now = node.cache.stats();
            let prev = base[n];
            let fields = [
                ("pos_hits", now.positive_hits - prev.positive_hits),
                ("neg_hits", now.negative_hits - prev.negative_hits),
                ("misses", now.misses - prev.misses),
                (
                    "expired_evictions",
                    now.expired_evictions - prev.expired_evictions,
                ),
                (
                    "capacity_evictions",
                    now.capacity_evictions - prev.capacity_evictions,
                ),
            ];
            for (field, delta) in fields {
                if delta > 0 {
                    self.obs.counter_add(&format!("cache.s{n}.{field}"), delta);
                }
            }
        }
    }

    /// Runs a whole raw trace through the hierarchy in parallel.
    ///
    /// # Errors
    ///
    /// Same as [`process_trace`](Self::process_trace).
    #[deprecated(
        since = "0.1.0",
        note = "use `process_trace(raws, authority, ExecPolicy::parallel())`"
    )]
    pub fn process_trace_parallel<A: Authority + Copy + Sync>(
        &mut self,
        raws: &[RawLookup],
        authority: A,
    ) -> Result<Vec<ObservedLookup>, TopologyError> {
        self.process_trace(raws, authority, ExecPolicy::parallel())
    }

    /// Cache statistics of one node.
    ///
    /// # Panics
    ///
    /// Panics if `server` does not exist.
    pub fn cache_stats(&self, server: ServerId) -> CacheStats {
        self.nodes[server.0 as usize].cache.stats()
    }

    /// Clears every cache in the hierarchy.
    pub fn clear_caches(&mut self) {
        for node in &mut self.nodes {
            node.cache.clear();
        }
    }
}

#[derive(Debug, Clone)]
struct CompactNode {
    parent: Option<ServerId>,
    cache: DnsCache<crate::DomainId>,
}

/// The id-resident mirror of [`Topology`]: the same resolver tree and
/// forwarding model, but caches are keyed by [`DomainId`](crate::DomainId)
/// and traffic flows as [`CompactLookup`]/[`CompactObserved`] `Copy`
/// records, so the per-lookup hot path touches no `Arc` refcounts and
/// performs no heap allocation in steady state.
///
/// Every cache is unbounded, so filtering depends only on each domain's own
/// history and id-keyed probes produce bit-identical visibility to the
/// name-keyed [`Topology`] (id equality ≡ name equality; the interner
/// panics at intern time on the astronomically unlikely fingerprint
/// collision). The authority is consulted — and the name resolved through
/// the interner's bytes arena — only on a border cache miss.
#[derive(Debug, Clone)]
pub struct CompactTopology {
    ttl: TtlPolicy,
    nodes: Vec<CompactNode>,
    client_map: HashMap<ClientId, ServerId>,
    default_leaf: Option<ServerId>,
    obs: Obs,
    scratch_path: Vec<ServerId>,
}

impl CompactTopology {
    /// The simplest topology in the paper's evaluation: one local resolver
    /// under the border, serving every client by default (the id-resident
    /// counterpart of [`Topology::single_local`]).
    pub fn single_local(ttl: TtlPolicy) -> CompactTopology {
        let nodes = vec![
            CompactNode {
                parent: None,
                cache: DnsCache::new(),
            },
            CompactNode {
                parent: Some(BORDER),
                cache: DnsCache::new(),
            },
        ];
        CompactTopology {
            ttl,
            nodes,
            client_map: HashMap::new(),
            default_leaf: Some(ServerId(1)),
            obs: Obs::noop(),
            scratch_path: Vec::with_capacity(4),
        }
    }

    /// The border server's id (always `ServerId(0)`).
    pub fn border(&self) -> ServerId {
        BORDER
    }

    /// Ids of all non-border resolvers.
    pub fn local_servers(&self) -> Vec<ServerId> {
        (1..self.nodes.len() as u32).map(ServerId).collect()
    }

    /// Attaches an observability handle; mirrors [`Topology::set_obs`].
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// The resolver a client's lookups enter at.
    ///
    /// # Errors
    ///
    /// [`TopologyError::UnroutedClient`] if the client has no assignment
    /// and no default leaf is set.
    pub fn route(&self, client: ClientId) -> Result<ServerId, TopologyError> {
        self.client_map
            .get(&client)
            .copied()
            .or(self.default_leaf)
            .ok_or(TopologyError::UnroutedClient(client))
    }

    /// Processes one compact raw lookup through the hierarchy. The interner
    /// must be the one that interned the lookup's domain; it is consulted
    /// only when the lookup reaches an authority-resolving border miss.
    ///
    /// # Errors
    ///
    /// [`TopologyError::UnroutedClient`] if the client cannot be routed.
    pub fn process<A: Authority>(
        &mut self,
        raw: &CompactLookup,
        interner: &crate::DomainInterner,
        authority: A,
    ) -> Result<Option<CompactObserved>, TopologyError> {
        let entry = self.route(raw.client)?;
        let t = raw.t;

        // Walk up, collecting the path of caches below the border. The
        // path scratch is owned by the topology so steady-state processing
        // allocates nothing.
        let mut path = std::mem::take(&mut self.scratch_path);
        path.clear();
        let mut current = entry;
        loop {
            if self.nodes[current.0 as usize]
                .cache
                .lookup(t, &raw.domain)
                .is_some()
            {
                self.scratch_path = path;
                return Ok(None); // absorbed below the vantage point
            }
            path.push(current);
            match self.nodes[current.0 as usize].parent {
                Some(parent) if parent == BORDER => break,
                Some(parent) => current = parent,
                None => break, // entry somehow was the border: defensive
            }
        }

        let forwarder = *path.last().expect("path has at least the entry node");
        let observed = CompactObserved::new(t, forwarder, raw.domain);

        let answer = self.resolve_at_border(t, raw.domain, interner, authority);

        // The response propagates back down; every node on the path caches it.
        for node in &path {
            self.nodes[node.0 as usize]
                .cache
                .store(t, raw.domain, answer, &self.ttl);
        }
        self.scratch_path = path;
        Ok(Some(observed))
    }

    fn resolve_at_border<A: Authority>(
        &mut self,
        t: SimInstant,
        domain: crate::DomainId,
        interner: &crate::DomainInterner,
        authority: A,
    ) -> Answer {
        let border = &mut self.nodes[BORDER.0 as usize];
        if let Some(hit) = border.cache.lookup(t, &domain) {
            return hit.answer;
        }
        let name = interner
            .resolve(domain)
            .expect("hot-path domains are interned before replay");
        let answer = authority.resolve(t, name);
        border.cache.store(t, domain, answer, &self.ttl);
        answer
    }

    /// Runs a whole compact raw trace (assumed time-ordered) through the
    /// hierarchy and appends the border-visible sub-trace to `out` —
    /// the caller owns (and recycles) the output buffer, keeping the
    /// sequential steady state allocation-free. Mirrors
    /// [`Topology::process_trace`], including the domain-sharded parallel
    /// path and its sequential fallbacks.
    ///
    /// # Errors
    ///
    /// Fails if any lookup's client is unroutable. (The parallel path
    /// pre-routes and leaves the caches unchanged on error, whereas
    /// sequential processing stops mid-trace.)
    pub fn process_trace_into<A: Authority + Copy + Sync>(
        &mut self,
        raws: &[CompactLookup],
        interner: &crate::DomainInterner,
        authority: A,
        policy: ExecPolicy,
        out: &mut Vec<CompactObserved>,
    ) -> Result<(), TopologyError> {
        const MIN_PARALLEL_TRACE: usize = 2048;
        let base_stats: Option<Vec<CacheStats>> = self
            .obs
            .enabled()
            .then(|| self.nodes.iter().map(|n| n.cache.stats()).collect());
        let admitted_before = out.len();

        let shards = policy.worker_threads();
        let bounded = self.nodes.iter().any(|n| n.cache.capacity().is_some());
        if shards <= 1 || bounded || raws.len() < MIN_PARALLEL_TRACE {
            for raw in raws {
                if let Some(obs) = self.process(raw, interner, authority)? {
                    out.push(obs);
                }
            }
        } else {
            self.process_trace_sharded(raws, interner, authority, shards, out)?;
        }

        if let Some(base) = base_stats {
            self.push_cache_deltas(&base);
            self.obs.counter_add("topology.lookups", raws.len() as u64);
            let admitted = out.len() - admitted_before;
            self.obs.counter_add("topology.admitted", admitted as u64);
            self.obs
                .counter_add("topology.filtered", (raws.len() - admitted) as u64);
        }
        Ok(())
    }

    /// Convenience wrapper over
    /// [`process_trace_into`](Self::process_trace_into) returning a fresh
    /// buffer.
    ///
    /// # Errors
    ///
    /// Same as [`process_trace_into`](Self::process_trace_into).
    pub fn process_trace<A: Authority + Copy + Sync>(
        &mut self,
        raws: &[CompactLookup],
        interner: &crate::DomainInterner,
        authority: A,
        policy: ExecPolicy,
    ) -> Result<Vec<CompactObserved>, TopologyError> {
        let mut out = Vec::new();
        self.process_trace_into(raws, interner, authority, policy, &mut out)?;
        Ok(out)
    }

    fn process_trace_sharded<A: Authority + Copy + Sync>(
        &mut self,
        raws: &[CompactLookup],
        interner: &crate::DomainInterner,
        authority: A,
        shards: usize,
        out: &mut Vec<CompactObserved>,
    ) -> Result<(), TopologyError> {
        for raw in raws {
            self.route(raw.client)?;
        }

        let mut parts: Vec<Vec<usize>> = vec![Vec::new(); shards];
        for (i, raw) in raws.iter().enumerate() {
            parts[(raw.domain.0 % shards as u64) as usize].push(i);
        }

        let base_stats: Vec<CacheStats> = self.nodes.iter().map(|n| n.cache.stats()).collect();
        let template: &CompactTopology = self;
        let shard_results: Vec<(CompactTopology, Vec<(usize, CompactObserved)>)> =
            botmeter_exec::run_indexed_with(
                ExecPolicy::with_threads(shards),
                &self.obs,
                shards,
                |s| {
                    let mut topo = template.clone();
                    let mut obs = Vec::new();
                    for &i in &parts[s] {
                        let visible = topo
                            .process(&raws[i], interner, authority)
                            .expect("every client pre-routed");
                        if let Some(o) = visible {
                            obs.push((i, o));
                        }
                    }
                    (topo, obs)
                },
            );

        // Stitch observations back into trace order (same scheme as the
        // name-keyed topology: a sort by unique trace index).
        let mut indexed: Vec<(usize, CompactObserved)> = shard_results
            .iter()
            .flat_map(|(_, obs)| obs.iter().copied())
            .collect();
        indexed.sort_by_key(|(i, _)| *i);
        out.extend(indexed.into_iter().map(|(_, o)| o));

        for (s, (shard_topo, _)) in shard_results.into_iter().enumerate() {
            for (n, shard_node) in shard_topo.nodes.into_iter().enumerate() {
                let shards = shards as u64;
                self.nodes[n].cache.absorb_shard(
                    shard_node.cache,
                    base_stats[n],
                    move |d: &crate::DomainId| (d.0 % shards) as usize == s,
                );
            }
        }
        Ok(())
    }

    /// Pushes the difference between the current per-node cache stats and
    /// `base` into the recorder as `cache.s{id}.*` counters — the same
    /// keys [`Topology`] pushes, so downstream metric consumers cannot
    /// tell the record layouts apart.
    fn push_cache_deltas(&self, base: &[CacheStats]) {
        for (n, node) in self.nodes.iter().enumerate() {
            let now = node.cache.stats();
            let prev = base[n];
            let fields = [
                ("pos_hits", now.positive_hits - prev.positive_hits),
                ("neg_hits", now.negative_hits - prev.negative_hits),
                ("misses", now.misses - prev.misses),
                (
                    "expired_evictions",
                    now.expired_evictions - prev.expired_evictions,
                ),
                (
                    "capacity_evictions",
                    now.capacity_evictions - prev.capacity_evictions,
                ),
            ];
            for (field, delta) in fields {
                if delta > 0 {
                    self.obs.counter_add(&format!("cache.s{n}.{field}"), delta);
                }
            }
        }
    }

    /// Cache statistics of one node.
    ///
    /// # Panics
    ///
    /// Panics if `server` does not exist.
    pub fn cache_stats(&self, server: ServerId) -> CacheStats {
        self.nodes[server.0 as usize].cache.stats()
    }

    /// Clears every cache in the hierarchy.
    pub fn clear_caches(&mut self) {
        for node in &mut self.nodes {
            node.cache.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::authority::StaticAuthority;
    use crate::time::SimDuration;

    fn d(s: &str) -> DomainName {
        s.parse().unwrap()
    }

    fn raw(ms: u64, client: u32, name: &str) -> RawLookup {
        RawLookup::new(SimInstant::from_millis(ms), ClientId(client), d(name))
    }

    #[test]
    fn single_local_filters_duplicates() {
        let mut topo = Topology::single_local(TtlPolicy::paper_default());
        let auth = StaticAuthority::empty();
        let first = topo.process(&raw(0, 1, "nx.example"), &auth).unwrap();
        assert!(first.is_some());
        assert_eq!(first.unwrap().server, ServerId(1));
        // Different client, same domain, within negative TTL: absorbed.
        assert!(topo
            .process(&raw(1000, 2, "nx.example"), &auth)
            .unwrap()
            .is_none());
        // After negative TTL expiry: visible again.
        let later = 2 * 3_600_000 + 1;
        assert!(topo
            .process(&raw(later, 3, "nx.example"), &auth)
            .unwrap()
            .is_some());
    }

    #[test]
    fn star_attributes_forwarding_server() {
        let mut topo = Topology::star(TtlPolicy::paper_default(), 2);
        let servers = topo.local_servers();
        topo.assign_client(ClientId(1), servers[0]).unwrap();
        topo.assign_client(ClientId(2), servers[1]).unwrap();
        let auth = StaticAuthority::empty();

        let a = topo
            .process(&raw(0, 1, "nx.example"), &auth)
            .unwrap()
            .unwrap();
        assert_eq!(a.server, servers[0]);
        // Same domain via the *other* resolver: its own cache is cold, so it
        // still reaches the border and is attributed to server 2.
        let b = topo
            .process(&raw(5, 2, "nx.example"), &auth)
            .unwrap()
            .unwrap();
        assert_eq!(b.server, servers[1]);
    }

    #[test]
    fn two_level_hierarchy_masks_at_middle() {
        let mut b = TopologyBuilder::new(TtlPolicy::paper_default());
        let site = b.add_resolver_under_border();
        let floor1 = b.add_resolver(site).unwrap();
        let floor2 = b.add_resolver(site).unwrap();
        let mut topo = b.build();
        topo.assign_client(ClientId(1), floor1).unwrap();
        topo.assign_client(ClientId(2), floor2).unwrap();
        let auth = StaticAuthority::empty();

        // Client 1's lookup reaches the border, attributed to `site`
        // (the last forwarder below the border).
        let obs = topo
            .process(&raw(0, 1, "nx.example"), &auth)
            .unwrap()
            .unwrap();
        assert_eq!(obs.server, site);

        // Client 2 goes through floor2 (cold) but hits site's warm cache:
        // absorbed in the middle of the hierarchy.
        assert!(topo
            .process(&raw(10, 2, "nx.example"), &auth)
            .unwrap()
            .is_none());
        // floor2 cached nothing (the lookup never got answered through it?
        // No: absorption means site's cached answer is served; floor2 does
        // not learn it in our model). A repeat via floor2 is absorbed again
        // at site.
        assert!(topo
            .process(&raw(20, 2, "nx.example"), &auth)
            .unwrap()
            .is_none());
    }

    #[test]
    fn routing_errors() {
        let mut topo = Topology::star(TtlPolicy::paper_default(), 1);
        let auth = StaticAuthority::empty();
        let err = topo.process(&raw(0, 9, "nx.example"), &auth).unwrap_err();
        assert_eq!(err, TopologyError::UnroutedClient(ClientId(9)));
        assert_eq!(
            topo.assign_client(ClientId(1), ServerId(0)),
            Err(TopologyError::BorderNotALeaf)
        );
        assert_eq!(
            topo.assign_client(ClientId(1), ServerId(42)),
            Err(TopologyError::UnknownServer(ServerId(42)))
        );
        assert!(err.to_string().contains("client-9"));
    }

    #[test]
    fn positive_answers_cached_longer() {
        let mut topo = Topology::single_local(TtlPolicy::paper_default());
        let auth = StaticAuthority::from_domains([d("c2.example")]);
        assert!(topo
            .process(&raw(0, 1, "c2.example"), &auth)
            .unwrap()
            .is_some());
        // 12 hours later: still inside the 1-day positive TTL.
        let t = SimDuration::from_hours(12).as_millis();
        assert!(topo
            .process(&raw(t, 2, "c2.example"), &auth)
            .unwrap()
            .is_none());
    }

    #[test]
    fn process_trace_preserves_order_and_filters() {
        let mut topo = Topology::single_local(TtlPolicy::paper_default());
        let auth = StaticAuthority::empty();
        let trace = vec![
            raw(0, 1, "a.example"),
            raw(10, 1, "b.example"),
            raw(20, 2, "a.example"), // absorbed
            raw(30, 2, "c.example"),
        ];
        let obs = topo
            .process_trace(&trace, &auth, ExecPolicy::Sequential)
            .unwrap();
        let names: Vec<&str> = obs.iter().map(|o| o.domain.as_str()).collect();
        assert_eq!(names, vec!["a.example", "b.example", "c.example"]);
    }

    #[test]
    fn clear_caches_resets_filtering() {
        let mut topo = Topology::single_local(TtlPolicy::paper_default());
        let auth = StaticAuthority::empty();
        assert!(topo
            .process(&raw(0, 1, "a.example"), &auth)
            .unwrap()
            .is_some());
        topo.clear_caches();
        assert!(topo
            .process(&raw(1, 1, "a.example"), &auth)
            .unwrap()
            .is_some());
    }

    #[test]
    fn cache_stats_survive_clear_caches_and_stay_counter_consistent() {
        let (obs, registry) = Obs::collecting();
        let mut topo = Topology::single_local(TtlPolicy::paper_default());
        topo.set_obs(obs);
        let auth = StaticAuthority::empty();
        let trace: Vec<RawLookup> = (0..64u64)
            .map(|i| raw(i * 10, 1, &format!("d{}.example", i % 8)))
            .collect();
        topo.process_trace(&trace, &auth, ExecPolicy::Sequential)
            .unwrap();
        let local = topo.local_servers()[0];
        let before = topo.cache_stats(local);
        assert!(before.hits() > 0 && before.misses > 0);

        // Clearing drops cached entries but not the lifetime statistics —
        // they track the same totals the pushed obs counters do.
        topo.clear_caches();
        assert_eq!(topo.cache_stats(local), before);
        let snap = registry.snapshot();
        let prefix = format!("cache.s{}.", local.0);
        assert_eq!(
            snap.counter(&format!("{prefix}neg_hits")),
            Some(before.negative_hits)
        );
        assert_eq!(
            snap.counter(&format!("{prefix}misses")),
            Some(before.misses)
        );

        // Further traffic keeps the cumulative stats and the pushed deltas
        // in lock-step: counter totals equal the stats totals at all times.
        topo.process_trace(&trace, &auth, ExecPolicy::Sequential)
            .unwrap();
        let after = topo.cache_stats(local);
        assert!(after.misses > before.misses);
        let snap = registry.snapshot();
        assert_eq!(
            snap.counter(&format!("{prefix}neg_hits")),
            Some(after.negative_hits)
        );
        assert_eq!(snap.counter(&format!("{prefix}misses")), Some(after.misses));
    }

    #[test]
    fn parallel_trace_matches_sequential_exactly() {
        // A trace long enough to clear the parallel threshold, with heavy
        // domain re-use so cache state actually matters.
        let build_trace = || {
            let mut trace = Vec::new();
            for i in 0..4000u64 {
                let name = format!("d{}.example", i % 97);
                trace.push(raw(i * 10, (i % 7) as u32, &name));
            }
            trace
        };
        let auth = StaticAuthority::from_domains([d("d3.example"), d("d55.example")]);

        let mut seq_topo = Topology::single_local(TtlPolicy::paper_default());
        let seq = seq_topo
            .process_trace(&build_trace(), &auth, ExecPolicy::Sequential)
            .unwrap();

        let mut par_topo = Topology::single_local(TtlPolicy::paper_default());
        let par = par_topo
            .process_trace(&build_trace(), &auth, ExecPolicy::with_threads(4))
            .unwrap();

        assert_eq!(seq, par, "parallel filtering must be bit-identical");
        let local = seq_topo.local_servers()[0];
        assert_eq!(seq_topo.cache_stats(local), par_topo.cache_stats(local));
        assert_eq!(
            seq_topo.cache_stats(ServerId(0)),
            par_topo.cache_stats(ServerId(0))
        );
    }

    #[test]
    fn parallel_trace_leaves_caches_usable() {
        // After a parallel run the merged caches must keep filtering like
        // sequentially-warmed ones.
        let mut trace = Vec::new();
        for i in 0..3000u64 {
            trace.push(raw(i, (i % 3) as u32, &format!("d{}.example", i % 11)));
        }
        let auth = StaticAuthority::empty();
        let mut topo = Topology::single_local(TtlPolicy::paper_default());
        topo.process_trace(&trace, &auth, ExecPolicy::parallel())
            .unwrap();
        // Every one of the 11 domains is now negatively cached.
        let t_after = 3000 + 10;
        for k in 0..11 {
            assert!(topo
                .process(&raw(t_after, 1, &format!("d{k}.example")), &auth)
                .unwrap()
                .is_none());
        }
    }

    #[test]
    fn parallel_trace_short_input_falls_back() {
        let auth = StaticAuthority::empty();
        let mut topo = Topology::single_local(TtlPolicy::paper_default());
        let obs = topo
            .process_trace(&[raw(0, 1, "a.example")], &auth, ExecPolicy::parallel())
            .unwrap();
        assert_eq!(obs.len(), 1);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_parallel_shim_still_works() {
        let auth = StaticAuthority::empty();
        let mut topo = Topology::single_local(TtlPolicy::paper_default());
        let obs = topo
            .process_trace_parallel(&[raw(0, 1, "a.example")], &auth)
            .unwrap();
        assert_eq!(obs.len(), 1);
    }

    #[test]
    fn trace_metrics_report_cache_deltas_and_admission() {
        let (handle, registry) = Obs::collecting();
        let mut topo = Topology::single_local(TtlPolicy::paper_default());
        topo.set_obs(handle);
        let auth = StaticAuthority::from_domains([d("live.example")]);
        let trace = vec![
            raw(0, 1, "live.example"),
            raw(10, 2, "live.example"), // positive cache hit at the local
            raw(20, 1, "nx.example"),
            raw(30, 2, "nx.example"), // negative cache hit at the local
        ];
        let seen = topo
            .process_trace(&trace, &auth, ExecPolicy::Sequential)
            .unwrap();
        assert_eq!(seen.len(), 2);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("topology.lookups"), Some(4));
        assert_eq!(snap.counter("topology.admitted"), Some(2));
        assert_eq!(snap.counter("topology.filtered"), Some(2));
        // The local resolver is node 1.
        assert_eq!(snap.counter("cache.s1.pos_hits"), Some(1));
        assert_eq!(snap.counter("cache.s1.neg_hits"), Some(1));
        assert_eq!(snap.counter("cache.s1.misses"), Some(2));
        // Counters agree with the in-cache source of truth.
        let stats = topo.cache_stats(topo.local_servers()[0]);
        assert_eq!(stats.positive_hits, 1);
        assert_eq!(stats.negative_hits, 1);
        assert_eq!(stats.misses, 2);
    }

    #[test]
    fn compact_topology_matches_name_keyed_filtering_bit_for_bit() {
        let mut interner = crate::DomainInterner::new();
        let mut trace = Vec::new();
        for i in 0..4000u64 {
            let name = interner.intern(d(&format!("d{}.example", i % 97)));
            trace.push(RawLookup::new(
                SimInstant::from_millis(i * 10),
                ClientId((i % 7) as u32),
                name,
            ));
        }
        let compact: Vec<CompactLookup> = trace.iter().map(|r| r.compact()).collect();
        let auth = StaticAuthority::from_domains([d("d3.example"), d("d55.example")]);

        for policy in [ExecPolicy::Sequential, ExecPolicy::with_threads(4)] {
            let mut legacy = Topology::single_local(TtlPolicy::paper_default());
            let expect = legacy.process_trace(&trace, &auth, policy).unwrap();

            let mut fast = CompactTopology::single_local(TtlPolicy::paper_default());
            let got = fast
                .process_trace(&compact, &interner, &auth, policy)
                .unwrap();

            let hydrated: Vec<ObservedLookup> = got
                .iter()
                .map(|o| o.hydrate(&interner).expect("interned"))
                .collect();
            assert_eq!(hydrated, expect, "policy {policy:?}");
            for s in [ServerId(0), ServerId(1)] {
                assert_eq!(fast.cache_stats(s), legacy.cache_stats(s), "server {s}");
            }
        }
    }

    #[test]
    fn compact_topology_pushes_the_same_counters() {
        let mut interner = crate::DomainInterner::new();
        let live = interner.intern(d("live.example"));
        let nx = interner.intern(d("nx.example"));
        let auth = StaticAuthority::from_domains([d("live.example")]);
        let trace = [
            CompactLookup::new(SimInstant::from_millis(0), ClientId(1), live.id()),
            CompactLookup::new(SimInstant::from_millis(10), ClientId(2), live.id()),
            CompactLookup::new(SimInstant::from_millis(20), ClientId(1), nx.id()),
            CompactLookup::new(SimInstant::from_millis(30), ClientId(2), nx.id()),
        ];
        let (handle, registry) = Obs::collecting();
        let mut topo = CompactTopology::single_local(TtlPolicy::paper_default());
        topo.set_obs(handle);
        let mut out = Vec::new();
        topo.process_trace_into(&trace, &interner, &auth, ExecPolicy::Sequential, &mut out)
            .unwrap();
        assert_eq!(out.len(), 2);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("topology.lookups"), Some(4));
        assert_eq!(snap.counter("topology.admitted"), Some(2));
        assert_eq!(snap.counter("topology.filtered"), Some(2));
        assert_eq!(snap.counter("cache.s1.pos_hits"), Some(1));
        assert_eq!(snap.counter("cache.s1.neg_hits"), Some(1));
        assert_eq!(snap.counter("cache.s1.misses"), Some(2));
    }

    #[test]
    fn cache_stats_accessible_per_node() {
        let mut topo = Topology::single_local(TtlPolicy::paper_default());
        let auth = StaticAuthority::empty();
        topo.process(&raw(0, 1, "a.example"), &auth).unwrap();
        topo.process(&raw(1, 1, "a.example"), &auth).unwrap();
        let local = topo.local_servers()[0];
        let s = topo.cache_stats(local);
        assert_eq!(s.hits(), 1);
        assert_eq!(s.misses, 1);
    }
}
