//! Trace record types shared across the workspace.
//!
//! The paper works with two trace shapes (§V-B):
//!
//! * the **raw dataset** — `⟨timestamp, client, domain⟩` tuples as issued by
//!   clients, visible only below the local resolvers (ground truth);
//! * the **observable dataset** — `⟨timestamp, forwarding server, domain⟩`
//!   tuples as they arrive at the border vantage point after cache filtering.

use crate::name::DomainName;
use crate::time::SimInstant;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a client device (an "IP address" in the paper's traces).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ClientId(pub u32);

/// Identifier of a DNS server (local resolver or border server).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ServerId(pub u32);

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "client-{}", self.0)
    }
}

impl fmt::Display for ServerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "server-{}", self.0)
    }
}

/// A DNS lookup as issued by a client, *before* cache filtering.
///
/// This is the ground-truth record: the simulator emits it, and the paper's
/// "raw dataset" has exactly this shape. It is never visible to BotMeter
/// itself.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RawLookup {
    /// When the client issued the query.
    pub t: SimInstant,
    /// The issuing client.
    pub client: ClientId,
    /// The queried domain.
    pub domain: DomainName,
}

impl RawLookup {
    /// Convenience constructor.
    pub fn new(t: SimInstant, client: ClientId, domain: DomainName) -> Self {
        RawLookup { t, client, domain }
    }

    /// The queried domain's precomputed content fingerprint — what the TTL
    /// caches probe instead of re-hashing the name.
    pub fn domain_id(&self) -> crate::DomainId {
        self.domain.id()
    }

    /// The id-resident form of this record (drops the `Arc`-backed text;
    /// resolve it back through the [`DomainInterner`](crate::DomainInterner)
    /// that interned the name).
    pub fn compact(&self) -> CompactLookup {
        CompactLookup {
            t: self.t,
            client: self.client,
            domain: self.domain.id(),
        }
    }
}

/// The id-resident form of a [`RawLookup`]: a plain-old-data `Copy` record
/// carrying the domain's [`DomainId`](crate::DomainId) instead of its
/// `Arc<str>`-backed text.
///
/// This is the hot-path record: copying, sorting, partitioning and merging
/// it touches no reference counts and frees no allocations, so shard
/// buffers full of these recycle through a
/// [`BufferPool`](https://docs.rs/botmeter-exec) without per-record cost.
/// The text stays resolvable through the
/// [`DomainInterner`](crate::DomainInterner) bytes arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CompactLookup {
    /// When the client issued the query.
    pub t: SimInstant,
    /// The issuing client.
    pub client: ClientId,
    /// The queried domain's content fingerprint.
    pub domain: crate::DomainId,
}

impl CompactLookup {
    /// Convenience constructor.
    pub fn new(t: SimInstant, client: ClientId, domain: crate::DomainId) -> Self {
        CompactLookup { t, client, domain }
    }

    /// Rehydrates the full record through the interner that interned the
    /// domain; `None` if the id is unknown to it.
    pub fn hydrate(&self, interner: &crate::DomainInterner) -> Option<RawLookup> {
        interner.resolve(self.domain).map(|domain| RawLookup {
            t: self.t,
            client: self.client,
            domain: domain.clone(),
        })
    }
}

/// The id-resident form of an [`ObservedLookup`] — same `Copy`/POD
/// properties as [`CompactLookup`], for the border-visible
/// `⟨t, server, domain⟩` shape the filter, fault and match stages stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CompactObserved {
    /// Arrival time at the border server.
    pub t: SimInstant,
    /// The forwarding server.
    pub server: ServerId,
    /// The queried domain's content fingerprint.
    pub domain: crate::DomainId,
}

impl CompactObserved {
    /// Convenience constructor.
    pub fn new(t: SimInstant, server: ServerId, domain: crate::DomainId) -> Self {
        CompactObserved { t, server, domain }
    }

    /// Rehydrates the full record through the interner that interned the
    /// domain; `None` if the id is unknown to it.
    pub fn hydrate(&self, interner: &crate::DomainInterner) -> Option<ObservedLookup> {
        interner.resolve(self.domain).map(|domain| ObservedLookup {
            t: self.t,
            server: self.server,
            domain: domain.clone(),
        })
    }
}

/// A DNS lookup as observed at the border vantage point, *after* cache
/// filtering — the paper's `⟨timestamp t, forwarding server s, domain d⟩`
/// tuple (§II-B). Client identity is gone: this is all BotMeter ever sees.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ObservedLookup {
    /// Arrival time at the border server (already quantised to the trace's
    /// timestamp granularity by the simulator).
    pub t: SimInstant,
    /// The lower-level server that forwarded the lookup.
    pub server: ServerId,
    /// The queried domain.
    pub domain: DomainName,
}

impl ObservedLookup {
    /// Convenience constructor.
    pub fn new(t: SimInstant, server: ServerId, domain: DomainName) -> Self {
        ObservedLookup { t, server, domain }
    }

    /// The queried domain's precomputed content fingerprint — what the
    /// matcher's confirmed set probes instead of re-hashing the name.
    pub fn domain_id(&self) -> crate::DomainId {
        self.domain.id()
    }

    /// The id-resident form of this record.
    pub fn compact(&self) -> CompactObserved {
        CompactObserved {
            t: self.t,
            server: self.server,
            domain: self.domain.id(),
        }
    }
}

impl fmt::Display for ObservedLookup {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨{}, {}, {}⟩", self.t, self.server, self.domain)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(s: &str) -> DomainName {
        s.parse().unwrap()
    }

    #[test]
    fn constructors_store_fields() {
        let raw = RawLookup::new(SimInstant::from_millis(5), ClientId(9), d("a.example"));
        assert_eq!(raw.t.as_millis(), 5);
        assert_eq!(raw.client, ClientId(9));
        assert_eq!(raw.domain.as_str(), "a.example");

        let obs = ObservedLookup::new(SimInstant::from_millis(7), ServerId(2), d("b.example"));
        assert_eq!(obs.server, ServerId(2));
    }

    #[test]
    fn observed_lookup_display() {
        let obs = ObservedLookup::new(SimInstant::from_millis(7), ServerId(2), d("b.example"));
        let s = obs.to_string();
        assert!(s.contains("server-2") && s.contains("b.example"));
    }

    #[test]
    fn serde_roundtrip() {
        let obs = ObservedLookup::new(SimInstant::from_millis(7), ServerId(2), d("b.example"));
        let json = serde_json::to_string(&obs).unwrap();
        let back: ObservedLookup = serde_json::from_str(&json).unwrap();
        assert_eq!(obs, back);
    }

    #[test]
    fn ids_are_ordered() {
        assert!(ClientId(1) < ClientId(2));
        assert!(ServerId(0) < ServerId(1));
        assert_eq!(ClientId::default(), ClientId(0));
    }

    #[test]
    fn compact_round_trips_through_the_interner() {
        let mut interner = crate::DomainInterner::new();
        let domain = interner.intern(d("a.example"));
        let raw = RawLookup::new(SimInstant::from_millis(5), ClientId(9), domain.clone());
        let compact = raw.compact();
        assert_eq!(compact.domain, domain.id());
        assert_eq!(compact.hydrate(&interner), Some(raw));

        let obs = ObservedLookup::new(SimInstant::from_millis(7), ServerId(2), domain);
        let cobs = obs.compact();
        assert_eq!(cobs.hydrate(&interner), Some(obs));

        // Ids unknown to the interner cannot rehydrate.
        let stranger = CompactLookup::new(SimInstant::ZERO, ClientId(0), crate::DomainId(42));
        assert_eq!(stranger.hydrate(&interner), None);
        let stranger = CompactObserved::new(SimInstant::ZERO, ServerId(0), crate::DomainId(42));
        assert_eq!(stranger.hydrate(&interner), None);
    }
}
