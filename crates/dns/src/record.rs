//! Trace record types shared across the workspace.
//!
//! The paper works with two trace shapes (§V-B):
//!
//! * the **raw dataset** — `⟨timestamp, client, domain⟩` tuples as issued by
//!   clients, visible only below the local resolvers (ground truth);
//! * the **observable dataset** — `⟨timestamp, forwarding server, domain⟩`
//!   tuples as they arrive at the border vantage point after cache filtering.

use crate::name::DomainName;
use crate::time::SimInstant;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a client device (an "IP address" in the paper's traces).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ClientId(pub u32);

/// Identifier of a DNS server (local resolver or border server).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ServerId(pub u32);

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "client-{}", self.0)
    }
}

impl fmt::Display for ServerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "server-{}", self.0)
    }
}

/// A DNS lookup as issued by a client, *before* cache filtering.
///
/// This is the ground-truth record: the simulator emits it, and the paper's
/// "raw dataset" has exactly this shape. It is never visible to BotMeter
/// itself.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RawLookup {
    /// When the client issued the query.
    pub t: SimInstant,
    /// The issuing client.
    pub client: ClientId,
    /// The queried domain.
    pub domain: DomainName,
}

impl RawLookup {
    /// Convenience constructor.
    pub fn new(t: SimInstant, client: ClientId, domain: DomainName) -> Self {
        RawLookup { t, client, domain }
    }

    /// The queried domain's precomputed content fingerprint — what the TTL
    /// caches probe instead of re-hashing the name.
    pub fn domain_id(&self) -> crate::DomainId {
        self.domain.id()
    }
}

/// A DNS lookup as observed at the border vantage point, *after* cache
/// filtering — the paper's `⟨timestamp t, forwarding server s, domain d⟩`
/// tuple (§II-B). Client identity is gone: this is all BotMeter ever sees.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ObservedLookup {
    /// Arrival time at the border server (already quantised to the trace's
    /// timestamp granularity by the simulator).
    pub t: SimInstant,
    /// The lower-level server that forwarded the lookup.
    pub server: ServerId,
    /// The queried domain.
    pub domain: DomainName,
}

impl ObservedLookup {
    /// Convenience constructor.
    pub fn new(t: SimInstant, server: ServerId, domain: DomainName) -> Self {
        ObservedLookup { t, server, domain }
    }

    /// The queried domain's precomputed content fingerprint — what the
    /// matcher's confirmed set probes instead of re-hashing the name.
    pub fn domain_id(&self) -> crate::DomainId {
        self.domain.id()
    }
}

impl fmt::Display for ObservedLookup {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨{}, {}, {}⟩", self.t, self.server, self.domain)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(s: &str) -> DomainName {
        s.parse().unwrap()
    }

    #[test]
    fn constructors_store_fields() {
        let raw = RawLookup::new(SimInstant::from_millis(5), ClientId(9), d("a.example"));
        assert_eq!(raw.t.as_millis(), 5);
        assert_eq!(raw.client, ClientId(9));
        assert_eq!(raw.domain.as_str(), "a.example");

        let obs = ObservedLookup::new(SimInstant::from_millis(7), ServerId(2), d("b.example"));
        assert_eq!(obs.server, ServerId(2));
    }

    #[test]
    fn observed_lookup_display() {
        let obs = ObservedLookup::new(SimInstant::from_millis(7), ServerId(2), d("b.example"));
        let s = obs.to_string();
        assert!(s.contains("server-2") && s.contains("b.example"));
    }

    #[test]
    fn serde_roundtrip() {
        let obs = ObservedLookup::new(SimInstant::from_millis(7), ServerId(2), d("b.example"));
        let json = serde_json::to_string(&obs).unwrap();
        let back: ObservedLookup = serde_json::from_str(&json).unwrap();
        assert_eq!(obs, back);
    }

    #[test]
    fn ids_are_ordered() {
        assert!(ClientId(1) < ClientId(2));
        assert!(ServerId(0) < ServerId(1));
        assert_eq!(ClientId::default(), ClientId(0));
    }
}
