//! Authoritative resolution: the oracle that decides whether a domain is
//! registered (resolves to an address) or yields NXDOMAIN at a given time.
//!
//! In the BotMeter setting, the botmaster registers `θ∃` domains from each
//! epoch's query pool as C2 servers and everything else is NXDOMAIN (§III).
//! The DGA crate implements [`Authority`] for its registrar; this module
//! carries the trait and a simple set-backed implementation.

use crate::name::DomainName;
use crate::time::SimInstant;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::net::Ipv4Addr;

/// The outcome of an authoritative DNS resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Answer {
    /// The domain resolves to an address (positive answer).
    Address(Ipv4Addr),
    /// The domain does not exist (negative answer, "NXD" in the paper).
    NxDomain,
}

impl Answer {
    /// Whether this is a positive (address) answer.
    pub fn is_positive(&self) -> bool {
        matches!(self, Answer::Address(_))
    }
}

impl std::fmt::Display for Answer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Answer::Address(ip) => write!(f, "{ip}"),
            Answer::NxDomain => write!(f, "NXDOMAIN"),
        }
    }
}

/// An authoritative name source: answers "does this domain exist *now*?".
///
/// Time-dependence matters because DGA C2 registrations rotate per epoch —
/// the same domain may be valid today and NXDOMAIN tomorrow.
pub trait Authority {
    /// Resolves `domain` at simulation time `t`.
    fn resolve(&self, t: SimInstant, domain: &DomainName) -> Answer;
}

impl<A: Authority + ?Sized> Authority for &A {
    fn resolve(&self, t: SimInstant, domain: &DomainName) -> Answer {
        (**self).resolve(t, domain)
    }
}

impl<A: Authority + ?Sized> Authority for Box<A> {
    fn resolve(&self, t: SimInstant, domain: &DomainName) -> Answer {
        (**self).resolve(t, domain)
    }
}

/// A time-invariant authority backed by a set of registered domains.
///
/// # Example
///
/// ```
/// use botmeter_dns::{Answer, Authority, SimInstant, StaticAuthority};
/// let auth = StaticAuthority::from_domains(["c2.example".parse()?]);
/// assert!(auth.resolve(SimInstant::ZERO, &"c2.example".parse()?).is_positive());
/// assert_eq!(auth.resolve(SimInstant::ZERO, &"nx.example".parse()?), Answer::NxDomain);
/// # Ok::<(), botmeter_dns::ParseDomainError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct StaticAuthority {
    registered: HashSet<DomainName>,
}

impl StaticAuthority {
    /// An authority with no registered domains: everything is NXDOMAIN.
    pub fn empty() -> Self {
        StaticAuthority::default()
    }

    /// Builds an authority from registered domains.
    pub fn from_domains<I: IntoIterator<Item = DomainName>>(domains: I) -> Self {
        StaticAuthority {
            registered: domains.into_iter().collect(),
        }
    }

    /// Registers one more domain.
    pub fn register(&mut self, domain: DomainName) {
        self.registered.insert(domain);
    }

    /// Number of registered domains.
    pub fn len(&self) -> usize {
        self.registered.len()
    }

    /// Whether no domain is registered.
    pub fn is_empty(&self) -> bool {
        self.registered.is_empty()
    }
}

impl Authority for StaticAuthority {
    fn resolve(&self, _t: SimInstant, domain: &DomainName) -> Answer {
        if self.registered.contains(domain) {
            // A fixed, recognisable sinkhole-style address.
            Answer::Address(Ipv4Addr::new(198, 51, 100, 1))
        } else {
            Answer::NxDomain
        }
    }
}

impl FromIterator<DomainName> for StaticAuthority {
    fn from_iter<I: IntoIterator<Item = DomainName>>(iter: I) -> Self {
        Self::from_domains(iter)
    }
}

impl Extend<DomainName> for StaticAuthority {
    fn extend<I: IntoIterator<Item = DomainName>>(&mut self, iter: I) {
        self.registered.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(s: &str) -> DomainName {
        s.parse().unwrap()
    }

    #[test]
    fn empty_authority_all_nx() {
        let a = StaticAuthority::empty();
        assert!(a.is_empty());
        assert_eq!(
            a.resolve(SimInstant::ZERO, &d("x.example")),
            Answer::NxDomain
        );
    }

    #[test]
    fn registered_domains_resolve() {
        let mut a = StaticAuthority::from_domains([d("a.example")]);
        a.register(d("b.example"));
        assert_eq!(a.len(), 2);
        assert!(a.resolve(SimInstant::ZERO, &d("a.example")).is_positive());
        assert!(a.resolve(SimInstant::ZERO, &d("b.example")).is_positive());
        assert!(!a.resolve(SimInstant::ZERO, &d("c.example")).is_positive());
    }

    #[test]
    fn collect_and_extend() {
        let mut a: StaticAuthority = vec![d("a.example")].into_iter().collect();
        a.extend([d("b.example")]);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn trait_object_and_reference_impls() {
        let a = StaticAuthority::from_domains([d("a.example")]);
        let by_ref: &dyn Authority = &a;
        assert!(by_ref
            .resolve(SimInstant::ZERO, &d("a.example"))
            .is_positive());
        let boxed: Box<dyn Authority> = Box::new(a);
        assert!(boxed
            .resolve(SimInstant::ZERO, &d("a.example"))
            .is_positive());
    }

    #[test]
    fn answer_display() {
        assert_eq!(Answer::NxDomain.to_string(), "NXDOMAIN");
        assert!(Answer::Address(Ipv4Addr::LOCALHOST)
            .to_string()
            .contains("127.0.0.1"));
    }
}
