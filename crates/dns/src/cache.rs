//! The TTL-aware resolver cache with positive and negative caching.
//!
//! This cache is the reason BotMeter is hard: a DNS lookup is *invisible* at
//! the vantage point whenever a non-expired entry — positive or negative —
//! exists at the local resolver (§II-B). Estimator correctness therefore
//! hinges on this module faithfully implementing expiry semantics.

use crate::authority::Answer;
use crate::intern::FxHashMap;
use crate::name::DomainName;
use crate::time::{SimDuration, SimInstant};
use crate::ttl::TtlPolicy;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::hash::Hash;

/// A cached answer together with its expiry time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CachedAnswer {
    /// The answer served from cache.
    pub answer: Answer,
    /// The instant at which the entry stops being served (exclusive: a
    /// lookup at exactly `expires_at` is a miss).
    pub expires_at: SimInstant,
}

/// Hit/miss counters for a cache (useful in tests and benchmark reports).
///
/// Hits are split by answer polarity — a positive hit masks a successful
/// resolution, a negative hit masks an NXDOMAIN retry — because the two
/// distort BotMeter's visibility model differently (§II-B). These counters
/// are the source of truth the observability layer snapshots into
/// `cache.s{id}.*` metrics after each trace batch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups answered from a live positive (address) entry.
    pub positive_hits: u64,
    /// Lookups answered from a live negative (NXDOMAIN) entry.
    pub negative_hits: u64,
    /// Lookups that found no live entry.
    pub misses: u64,
    /// Entries that were found expired and dropped lazily.
    pub expired_evictions: u64,
    /// Live entries evicted to make room under a capacity bound.
    pub capacity_evictions: u64,
}

impl CacheStats {
    /// Total lookups answered from a live entry (positive + negative).
    pub fn hits(&self) -> u64 {
        self.positive_hits + self.negative_hits
    }

    /// Fraction of lookups answered from cache (`0.0` when empty).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits() + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits() as f64 / total as f64
        }
    }
}

/// A resolver cache mapping domain keys to answers with TTL-based expiry.
///
/// Expiry is lazy: entries are dropped when a lookup finds them expired, or
/// in bulk via [`purge_expired`](Self::purge_expired).
///
/// The cache is generic over its key: the default `K = DomainName` keys by
/// the full validated name (equality compares text, so a fingerprint
/// collision can never conflate entries), while the id-resident hot path
/// instantiates `DnsCache<DomainId>` and probes with the bare 64-bit
/// fingerprint — no `Arc` clone per stored key, no text compare per hit.
/// Expiry arithmetic depends only on timestamps, so the two instantiations
/// filter identical streams identically for unbounded caches (the bounded
/// eviction order breaks ties on key order, which differs between text and
/// fingerprint keys).
///
/// # Example
///
/// ```
/// use botmeter_dns::{Answer, DnsCache, DomainName, SimDuration, SimInstant, TtlPolicy};
/// let mut cache = DnsCache::new();
/// let ttl = TtlPolicy::paper_default();
/// let d: DomainName = "nx.example".parse()?;
/// let t = SimInstant::ZERO;
/// cache.store(t, d, Answer::NxDomain, &ttl);
/// assert_eq!(cache.len(), 1);
/// # Ok::<(), botmeter_dns::ParseDomainError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DnsCache<K = DomainName> {
    /// Key-indexed entries behind the Fx hasher: both `DomainName` and
    /// `DomainId` hash as one precomputed `u64`, so a probe costs one
    /// multiply.
    entries: FxHashMap<K, CachedAnswer>,
    /// Expiry-ordered index, maintained only when a capacity bound is set
    /// (unbounded caches skip the bookkeeping entirely).
    expiry_index: BTreeSet<(SimInstant, K)>,
    capacity: Option<usize>,
    stats: CacheStats,
}

impl<K> Default for DnsCache<K> {
    fn default() -> Self {
        DnsCache {
            entries: FxHashMap::default(),
            expiry_index: BTreeSet::new(),
            capacity: None,
            stats: CacheStats::default(),
        }
    }
}

impl<K: Hash + Eq + Ord + Clone> DnsCache<K> {
    /// Creates an empty, unbounded cache.
    pub fn new() -> Self {
        DnsCache::default()
    }

    /// Creates a cache bounded to `capacity` entries. When a store would
    /// exceed the bound, the entry closest to expiry is evicted first —
    /// the policy real resolvers approximate, and the one that perturbs
    /// BotMeter's visibility model least (soon-to-expire entries were
    /// about to stop masking lookups anyway).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        DnsCache {
            capacity: Some(capacity),
            ..DnsCache::default()
        }
    }

    /// Looks up `domain` at time `t`.
    ///
    /// Returns `Some` (a hit — the lookup would be absorbed and *not*
    /// forwarded) if a non-expired entry exists, `None` otherwise. Expired
    /// entries encountered here are evicted.
    pub fn lookup(&mut self, t: SimInstant, domain: &K) -> Option<CachedAnswer> {
        match self.entries.get(domain) {
            Some(entry) if t < entry.expires_at => {
                match entry.answer {
                    Answer::Address(_) => self.stats.positive_hits += 1,
                    Answer::NxDomain => self.stats.negative_hits += 1,
                }
                Some(*entry)
            }
            Some(entry) => {
                let expires_at = entry.expires_at;
                self.entries.remove(domain);
                if self.capacity.is_some() {
                    self.expiry_index.remove(&(expires_at, domain.clone()));
                }
                self.stats.expired_evictions += 1;
                self.stats.misses += 1;
                None
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Stores an answer obtained at time `t`, with the TTL chosen from
    /// `policy` according to the answer's polarity (positive vs negative
    /// caching). A zero TTL stores nothing.
    pub fn store(&mut self, t: SimInstant, domain: K, answer: Answer, policy: &TtlPolicy) {
        let ttl = match answer {
            Answer::Address(_) => policy.positive(),
            Answer::NxDomain => policy.negative(),
        };
        self.store_with_ttl(t, domain, answer, ttl);
    }

    /// Stores an answer with an explicit TTL (a zero TTL stores nothing).
    pub fn store_with_ttl(&mut self, t: SimInstant, domain: K, answer: Answer, ttl: SimDuration) {
        if ttl.is_zero() {
            return;
        }
        if let Some(cap) = self.capacity {
            // Replace-in-place never grows the map; only fresh inserts can.
            if !self.entries.contains_key(&domain) && self.entries.len() >= cap {
                // Drop expired entries first; evict the soonest-to-expire
                // live entry if that was not enough.
                if self.purge_expired(t) == 0 {
                    if let Some((exp, victim)) = self.expiry_index.iter().next().cloned() {
                        self.expiry_index.remove(&(exp, victim.clone()));
                        self.entries.remove(&victim);
                        self.stats.capacity_evictions += 1;
                    }
                }
            }
            let expires_at = t + ttl;
            if let Some(old) = self
                .entries
                .insert(domain.clone(), CachedAnswer { answer, expires_at })
            {
                self.expiry_index.remove(&(old.expires_at, domain.clone()));
            }
            self.expiry_index.insert((expires_at, domain));
        } else {
            self.entries.insert(
                domain,
                CachedAnswer {
                    answer,
                    expires_at: t + ttl,
                },
            );
        }
    }

    /// Drops every entry that has expired as of `t`; returns how many were
    /// removed.
    pub fn purge_expired(&mut self, t: SimInstant) -> usize {
        let before = self.entries.len();
        if self.capacity.is_some() {
            // The index is expiry-ordered: pop from the front.
            while let Some((exp, domain)) = self.expiry_index.iter().next().cloned() {
                if t < exp {
                    break;
                }
                self.expiry_index.remove(&(exp, domain.clone()));
                self.entries.remove(&domain);
            }
        } else {
            self.entries.retain(|_, e| t < e.expires_at);
        }
        let removed = before - self.entries.len();
        self.stats.expired_evictions += removed as u64;
        removed
    }

    /// Removes every entry (e.g. at an epoch boundary in tests).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.expiry_index.clear();
    }

    /// The configured capacity bound, if any.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Number of entries currently stored (including not-yet-evicted
    /// expired ones).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Hit/miss counters accumulated so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Folds a domain-shard's cache back into this one after parallel trace
    /// processing: `shard` started as a clone of `self` and processed only
    /// lookups whose domains satisfy `owned`, so it is authoritative for
    /// exactly those entries. `base` is this cache's stats snapshot from
    /// before the shards were cloned; the shard's deltas are added on top.
    ///
    /// Only meaningful for unbounded caches (sharding a capacity-bounded
    /// cache is not order-independent, and callers fall back to sequential
    /// processing there).
    pub(crate) fn absorb_shard<F: Fn(&K) -> bool>(
        &mut self,
        shard: DnsCache<K>,
        base: CacheStats,
        owned: F,
    ) {
        debug_assert!(
            self.capacity.is_none(),
            "sharded merge requires unbounded cache"
        );
        // The shard owns its domains outright: drop our (possibly stale)
        // copies, then adopt the shard's surviving entries.
        self.entries.retain(|d, _| !owned(d));
        for (d, e) in shard.entries {
            if owned(&d) {
                self.entries.insert(d, e);
            }
        }
        self.stats.positive_hits += shard.stats.positive_hits - base.positive_hits;
        self.stats.negative_hits += shard.stats.negative_hits - base.negative_hits;
        self.stats.misses += shard.stats.misses - base.misses;
        self.stats.expired_evictions += shard.stats.expired_evictions - base.expired_evictions;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(s: &str) -> DomainName {
        s.parse().unwrap()
    }

    fn ttl() -> TtlPolicy {
        TtlPolicy::paper_default()
    }

    #[test]
    fn miss_then_hit_then_expiry() {
        let mut c = DnsCache::new();
        let t0 = SimInstant::ZERO;
        assert!(c.lookup(t0, &d("a.example")).is_none());
        c.store(t0, d("a.example"), Answer::NxDomain, &ttl());
        // Within the 2h negative TTL: hit.
        let hit = c.lookup(t0 + SimDuration::from_mins(119), &d("a.example"));
        assert!(hit.is_some());
        assert_eq!(hit.unwrap().answer, Answer::NxDomain);
        // At exactly the TTL boundary: miss (expiry is exclusive).
        assert!(c
            .lookup(t0 + SimDuration::from_hours(2), &d("a.example"))
            .is_none());
        // The expired entry was evicted.
        assert!(c.is_empty());
    }

    #[test]
    fn positive_and_negative_ttls_differ() {
        let mut c = DnsCache::new();
        let t0 = SimInstant::ZERO;
        let policy = ttl();
        c.store(
            t0,
            d("valid.example"),
            Answer::Address(std::net::Ipv4Addr::new(192, 0, 2, 1)),
            &policy,
        );
        c.store(t0, d("nx.example"), Answer::NxDomain, &policy);
        let probe = t0 + SimDuration::from_hours(12);
        assert!(
            c.lookup(probe, &d("valid.example")).is_some(),
            "positive lives 1 day"
        );
        assert!(
            c.lookup(probe, &d("nx.example")).is_none(),
            "negative died after 2h"
        );
    }

    #[test]
    fn zero_ttl_stores_nothing() {
        let mut c = DnsCache::new();
        c.store_with_ttl(
            SimInstant::ZERO,
            d("a.example"),
            Answer::NxDomain,
            SimDuration::ZERO,
        );
        assert!(c.is_empty());
    }

    #[test]
    fn restore_refreshes_expiry() {
        let mut c = DnsCache::new();
        let t0 = SimInstant::ZERO;
        c.store(t0, d("a.example"), Answer::NxDomain, &ttl());
        let t1 = t0 + SimDuration::from_hours(1);
        c.store(t1, d("a.example"), Answer::NxDomain, &ttl());
        // 2.5h after t0 but only 1.5h after t1: still cached.
        assert!(c
            .lookup(t0 + SimDuration::from_mins(150), &d("a.example"))
            .is_some());
    }

    #[test]
    fn purge_expired_bulk() {
        let mut c = DnsCache::new();
        let t0 = SimInstant::ZERO;
        for i in 0..10 {
            c.store(t0, d(&format!("x{i}.example")), Answer::NxDomain, &ttl());
        }
        assert_eq!(c.len(), 10);
        assert_eq!(c.purge_expired(t0 + SimDuration::from_hours(1)), 0);
        assert_eq!(c.purge_expired(t0 + SimDuration::from_hours(3)), 10);
        assert!(c.is_empty());
    }

    #[test]
    fn stats_track_hits_misses_evictions() {
        let mut c = DnsCache::new();
        let t0 = SimInstant::ZERO;
        c.lookup(t0, &d("a.example")); // miss
        c.store(t0, d("a.example"), Answer::NxDomain, &ttl());
        c.lookup(t0 + SimDuration::from_mins(1), &d("a.example")); // negative hit
        c.lookup(t0 + SimDuration::from_hours(5), &d("a.example")); // expired -> miss+evict
        let ip = Answer::Address(std::net::Ipv4Addr::new(192, 0, 2, 7));
        c.store(
            t0 + SimDuration::from_hours(5),
            d("live.example"),
            ip,
            &ttl(),
        );
        c.lookup(t0 + SimDuration::from_hours(6), &d("live.example")); // positive hit
        let s = c.stats();
        assert_eq!(s.positive_hits, 1);
        assert_eq!(s.negative_hits, 1);
        assert_eq!(s.hits(), 2);
        assert_eq!(s.misses, 2);
        assert_eq!(s.expired_evictions, 1);
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn hit_rate_empty_is_zero() {
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn bounded_cache_evicts_soonest_expiry_first() {
        let mut c = DnsCache::with_capacity(2);
        let t0 = SimInstant::ZERO;
        let ip = Answer::Address(std::net::Ipv4Addr::new(192, 0, 2, 9));
        // a expires in 1h, b in 2h.
        c.store_with_ttl(
            t0,
            d("a.example"),
            Answer::NxDomain,
            SimDuration::from_hours(1),
        );
        c.store_with_ttl(t0, d("b.example"), ip, SimDuration::from_hours(2));
        assert_eq!(c.capacity(), Some(2));
        // Third insert evicts a (soonest expiry).
        c.store_with_ttl(
            t0,
            d("c.example"),
            Answer::NxDomain,
            SimDuration::from_hours(3),
        );
        assert_eq!(c.len(), 2);
        assert!(c
            .lookup(t0 + SimDuration::from_mins(1), &d("a.example"))
            .is_none());
        assert!(c
            .lookup(t0 + SimDuration::from_mins(1), &d("b.example"))
            .is_some());
        assert!(c
            .lookup(t0 + SimDuration::from_mins(1), &d("c.example"))
            .is_some());
        assert_eq!(c.stats().capacity_evictions, 1);
    }

    #[test]
    fn bounded_cache_prefers_purging_expired() {
        let mut c = DnsCache::with_capacity(2);
        let t0 = SimInstant::ZERO;
        c.store_with_ttl(
            t0,
            d("a.example"),
            Answer::NxDomain,
            SimDuration::from_mins(1),
        );
        c.store_with_ttl(
            t0,
            d("b.example"),
            Answer::NxDomain,
            SimDuration::from_hours(5),
        );
        // a has expired by now: the new insert purges it, not b.
        let later = t0 + SimDuration::from_mins(2);
        c.store_with_ttl(
            later,
            d("c.example"),
            Answer::NxDomain,
            SimDuration::from_hours(5),
        );
        assert!(c.lookup(later, &d("b.example")).is_some());
        assert!(c.lookup(later, &d("c.example")).is_some());
        assert_eq!(c.stats().capacity_evictions, 0);
    }

    #[test]
    fn bounded_cache_restore_updates_index() {
        let mut c = DnsCache::with_capacity(2);
        let t0 = SimInstant::ZERO;
        c.store_with_ttl(
            t0,
            d("a.example"),
            Answer::NxDomain,
            SimDuration::from_mins(5),
        );
        // Refresh a with a later expiry; the stale index entry must go.
        c.store_with_ttl(
            t0,
            d("a.example"),
            Answer::NxDomain,
            SimDuration::from_hours(5),
        );
        c.store_with_ttl(
            t0,
            d("b.example"),
            Answer::NxDomain,
            SimDuration::from_hours(1),
        );
        // Inserting c should evict b (1h), not a (5h).
        c.store_with_ttl(
            t0,
            d("c.example"),
            Answer::NxDomain,
            SimDuration::from_hours(2),
        );
        assert!(c.lookup(t0, &d("a.example")).is_some());
        assert!(c.lookup(t0, &d("b.example")).is_none());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        DnsCache::<DomainName>::with_capacity(0);
    }

    #[test]
    fn bounded_purge_expired_uses_index() {
        let mut c = DnsCache::with_capacity(8);
        let t0 = SimInstant::ZERO;
        for i in 0..5 {
            c.store_with_ttl(
                t0,
                d(&format!("x{i}.example")),
                Answer::NxDomain,
                SimDuration::from_mins(10 + i),
            );
        }
        // Expiry is exclusive: at +12 min the 10, 11 and 12-minute entries
        // have all lapsed.
        assert_eq!(c.purge_expired(t0 + SimDuration::from_mins(12)), 3);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn clear_drops_everything() {
        let mut c = DnsCache::new();
        c.store(SimInstant::ZERO, d("a.example"), Answer::NxDomain, &ttl());
        c.clear();
        assert!(c.is_empty());
    }
}
