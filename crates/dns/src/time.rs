//! Virtual time: all simulation and estimation code runs on a millisecond
//! clock decoupled from wall-clock time, so experiments are deterministic.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// A point on the simulation timeline (milliseconds since the simulation
/// epoch, `t = 0`).
///
/// # Example
///
/// ```
/// use botmeter_dns::{SimDuration, SimInstant};
/// let t = SimInstant::ZERO + SimDuration::from_days(1);
/// assert_eq!(t.as_millis(), 86_400_000);
/// assert_eq!(t.epoch_day(SimDuration::from_days(1)), 1);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimInstant(u64);

/// A span of simulation time in milliseconds.
///
/// # Example
///
/// ```
/// use botmeter_dns::SimDuration;
/// assert_eq!(SimDuration::from_hours(2).as_millis(), 7_200_000);
/// assert_eq!(SimDuration::from_secs(1) * 500, SimDuration::from_millis(500_000));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimInstant {
    /// The simulation epoch, `t = 0`.
    pub const ZERO: SimInstant = SimInstant(0);

    /// Creates an instant from raw milliseconds since the epoch.
    pub const fn from_millis(ms: u64) -> Self {
        SimInstant(ms)
    }

    /// Milliseconds since the simulation epoch.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Seconds since the simulation epoch (truncating).
    pub const fn as_secs(self) -> u64 {
        self.0 / 1000
    }

    /// The index of the epoch (e.g. day) this instant falls in, for a given
    /// epoch length.
    ///
    /// # Panics
    ///
    /// Panics if `epoch_len` is zero.
    pub fn epoch_day(self, epoch_len: SimDuration) -> u64 {
        assert!(epoch_len.0 > 0, "epoch length must be positive");
        self.0 / epoch_len.0
    }

    /// Duration since an earlier instant; saturates to zero if `earlier`
    /// is actually later.
    pub fn saturating_since(self, earlier: SimInstant) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Quantises the timestamp down to a multiple of `granularity`
    /// (the paper's "timestamp granularity": 100 ms for synthetic traces,
    /// 1 s for the enterprise trace).
    ///
    /// A zero granularity leaves the instant untouched.
    #[must_use]
    pub fn quantize(self, granularity: SimDuration) -> SimInstant {
        if granularity.0 == 0 {
            self
        } else {
            SimInstant(self.0 - self.0 % granularity.0)
        }
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms)
    }

    /// Creates a duration from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1000)
    }

    /// Creates a duration from minutes.
    pub const fn from_mins(m: u64) -> Self {
        SimDuration(m * 60_000)
    }

    /// Creates a duration from hours.
    pub const fn from_hours(h: u64) -> Self {
        SimDuration(h * 3_600_000)
    }

    /// Creates a duration from days.
    pub const fn from_days(d: u64) -> Self {
        SimDuration(d * 86_400_000)
    }

    /// The duration in milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// The duration in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// Whether this duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Checked integer division of two durations (how many `rhs` fit in
    /// `self`); `None` when `rhs` is zero.
    pub fn checked_div_duration(self, rhs: SimDuration) -> Option<u64> {
        self.0.checked_div(rhs.0)
    }
}

impl Add<SimDuration> for SimInstant {
    type Output = SimInstant;
    fn add(self, rhs: SimDuration) -> SimInstant {
        SimInstant(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimInstant {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimInstant {
    type Output = SimInstant;
    fn sub(self, rhs: SimDuration) -> SimInstant {
        SimInstant(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimInstant> for SimInstant {
    type Output = SimDuration;
    /// Saturating difference between two instants.
    fn sub(self, rhs: SimInstant) -> SimDuration {
        self.saturating_since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl std::ops::Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl fmt::Display for SimInstant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}ms", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ms = self.0;
        if ms == 0 {
            return write!(f, "0ms");
        }
        if ms.is_multiple_of(86_400_000) {
            write!(f, "{}d", ms / 86_400_000)
        } else if ms.is_multiple_of(3_600_000) {
            write!(f, "{}h", ms / 3_600_000)
        } else if ms.is_multiple_of(60_000) {
            write!(f, "{}min", ms / 60_000)
        } else if ms.is_multiple_of(1000) {
            write!(f, "{}s", ms / 1000)
        } else {
            write!(f, "{}ms", ms)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrip() {
        let t = SimInstant::from_millis(500);
        let d = SimDuration::from_secs(2);
        assert_eq!((t + d).as_millis(), 2500);
        assert_eq!((t + d) - d, t);
        assert_eq!((t + d) - t, d);
    }

    #[test]
    fn subtraction_saturates() {
        let t = SimInstant::from_millis(100);
        assert_eq!(t - SimDuration::from_secs(5), SimInstant::ZERO);
        assert_eq!(SimInstant::ZERO - t, SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_millis(1) - SimDuration::from_millis(5),
            SimDuration::ZERO
        );
    }

    #[test]
    fn unit_constructors() {
        assert_eq!(SimDuration::from_days(1).as_millis(), 86_400_000);
        assert_eq!(SimDuration::from_hours(1).as_millis(), 3_600_000);
        assert_eq!(SimDuration::from_mins(1).as_millis(), 60_000);
        assert_eq!(SimDuration::from_secs(1).as_millis(), 1000);
    }

    #[test]
    fn epoch_day_boundaries() {
        let day = SimDuration::from_days(1);
        assert_eq!(SimInstant::ZERO.epoch_day(day), 0);
        assert_eq!((SimInstant::ZERO + day).epoch_day(day), 1);
        let just_before = SimInstant::from_millis(day.as_millis() - 1);
        assert_eq!(just_before.epoch_day(day), 0);
    }

    #[test]
    #[should_panic(expected = "epoch length must be positive")]
    fn epoch_day_zero_len_panics() {
        SimInstant::ZERO.epoch_day(SimDuration::ZERO);
    }

    #[test]
    fn quantize_floors() {
        let g = SimDuration::from_millis(100);
        assert_eq!(
            SimInstant::from_millis(1234).quantize(g),
            SimInstant::from_millis(1200)
        );
        assert_eq!(
            SimInstant::from_millis(1200).quantize(g),
            SimInstant::from_millis(1200)
        );
        // Zero granularity is the identity.
        assert_eq!(
            SimInstant::from_millis(77).quantize(SimDuration::ZERO),
            SimInstant::from_millis(77)
        );
    }

    #[test]
    fn display_picks_largest_unit() {
        assert_eq!(SimDuration::from_days(2).to_string(), "2d");
        assert_eq!(SimDuration::from_hours(3).to_string(), "3h");
        assert_eq!(SimDuration::from_mins(20).to_string(), "20min");
        assert_eq!(SimDuration::from_secs(7).to_string(), "7s");
        assert_eq!(SimDuration::from_millis(500).to_string(), "500ms");
        assert_eq!(SimDuration::ZERO.to_string(), "0ms");
    }

    #[test]
    fn div_duration() {
        let d = SimDuration::from_hours(2);
        assert_eq!(d.checked_div_duration(SimDuration::from_mins(30)), Some(4));
        assert_eq!(d.checked_div_duration(SimDuration::ZERO), None);
    }

    #[test]
    fn ordering_and_serde() {
        let a = SimInstant::from_millis(1);
        let b = SimInstant::from_millis(2);
        assert!(a < b);
        let json = serde_json::to_string(&b).unwrap();
        let back: SimInstant = serde_json::from_str(&json).unwrap();
        assert_eq!(b, back);
    }
}
