//! Hierarchical caching-and-forwarding DNS substrate for BotMeter.
//!
//! The BotMeter paper (§II) assumes a large network whose DNS infrastructure
//! is a tree: clients query their *local* DNS server; each local server keeps
//! a cache (with distinct TTLs for valid answers and NXDOMAIN responses) and
//! forwards only cache misses to an upper-level server; the *border* server
//! is the vantage point where lookups become observable as
//! `⟨timestamp, forwarding server, domain⟩` tuples.
//!
//! This crate provides that substrate, built from scratch:
//!
//! * a millisecond-granularity virtual clock ([`SimInstant`], [`SimDuration`]);
//! * validated [`DomainName`]s;
//! * a TTL-aware [`DnsCache`] with positive and negative caching;
//! * [`LocalResolver`] (one caching-forwarding node) and [`Topology`] (a
//!   whole resolver tree with the border vantage point);
//! * the trace record types ([`RawLookup`], [`ObservedLookup`]) shared by
//!   the simulator, the matcher and the estimators.
//!
//! # Example: one lookup's life cycle (paper §II-A)
//!
//! ```
//! use botmeter_dns::{
//!     DnsCache, DomainName, SimDuration, SimInstant, StaticAuthority, TtlPolicy,
//!     Answer, Authority,
//! };
//!
//! let ttl = TtlPolicy::new(SimDuration::from_days(1), SimDuration::from_hours(2));
//! let mut cache = DnsCache::new();
//! let auth = StaticAuthority::empty(); // everything is NXDOMAIN
//! let d: DomainName = "xkcd1353.example".parse()?;
//!
//! let t0 = SimInstant::ZERO;
//! assert!(cache.lookup(t0, &d).is_none());           // miss → forwarded
//! let answer = auth.resolve(t0, &d);
//! assert_eq!(answer, Answer::NxDomain);
//! cache.store(t0, d.clone(), answer, &ttl);
//!
//! // 1 hour later the negative entry still masks the lookup ...
//! assert!(cache.lookup(t0 + SimDuration::from_hours(1), &d).is_some());
//! // ... but after the 2-hour negative TTL it has expired.
//! assert!(cache.lookup(t0 + SimDuration::from_hours(3), &d).is_none());
//! # Ok::<(), botmeter_dns::ParseDomainError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod authority;
mod cache;
mod intern;
mod name;
mod record;
mod resolver;
mod time;
mod topology;
pub mod trace;
mod ttl;

pub use authority::{Answer, Authority, StaticAuthority};
pub use cache::{CacheStats, CachedAnswer, DnsCache};
pub use intern::{
    fx_hash64, DomainId, DomainInterner, FxBuildHasher, FxHashMap, FxHashSet, FxHasher,
};
pub use name::{DomainName, ParseDomainError};
pub use record::{ClientId, CompactLookup, CompactObserved, ObservedLookup, RawLookup, ServerId};
pub use resolver::LocalResolver;
pub use time::{SimDuration, SimInstant};
pub use topology::{CompactTopology, Topology, TopologyBuilder, TopologyError};
pub use ttl::TtlPolicy;
