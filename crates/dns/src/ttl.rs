//! TTL policy: how long positive and negative answers stay cached.

use crate::time::SimDuration;
use serde::{Deserialize, Serialize};

/// Cache lifetimes for valid answers (positive caching) and NXDOMAIN
/// responses (negative caching).
///
/// The paper follows IETF guidance (§II-B): positive TTLs of one to several
/// days, negative TTLs of minutes to hours. The synthetic-trace default is
/// positive = 1 day, negative = 2 hours.
///
/// # Example
///
/// ```
/// use botmeter_dns::{SimDuration, TtlPolicy};
/// let ttl = TtlPolicy::paper_default();
/// assert_eq!(ttl.positive(), SimDuration::from_days(1));
/// assert_eq!(ttl.negative(), SimDuration::from_hours(2));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TtlPolicy {
    positive: SimDuration,
    negative: SimDuration,
}

impl TtlPolicy {
    /// Creates a policy from explicit lifetimes.
    pub fn new(positive: SimDuration, negative: SimDuration) -> Self {
        TtlPolicy { positive, negative }
    }

    /// The paper's synthetic-data default: positive cache TTL = 1 day,
    /// negative cache TTL = 2 hours (§V-A).
    pub fn paper_default() -> Self {
        TtlPolicy {
            positive: SimDuration::from_days(1),
            negative: SimDuration::from_hours(2),
        }
    }

    /// Returns this policy with a different negative TTL (the swept
    /// parameter of Fig. 6(c)).
    #[must_use]
    pub fn with_negative(self, negative: SimDuration) -> Self {
        TtlPolicy { negative, ..self }
    }

    /// Returns this policy with a different positive TTL.
    #[must_use]
    pub fn with_positive(self, positive: SimDuration) -> Self {
        TtlPolicy { positive, ..self }
    }

    /// Lifetime of cached valid answers.
    pub fn positive(&self) -> SimDuration {
        self.positive
    }

    /// Lifetime of cached NXDOMAIN answers.
    pub fn negative(&self) -> SimDuration {
        self.negative
    }
}

impl Default for TtlPolicy {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        assert_eq!(TtlPolicy::default(), TtlPolicy::paper_default());
    }

    #[test]
    fn with_negative_keeps_positive() {
        let p = TtlPolicy::paper_default().with_negative(SimDuration::from_mins(20));
        assert_eq!(p.negative(), SimDuration::from_mins(20));
        assert_eq!(p.positive(), SimDuration::from_days(1));
    }

    #[test]
    fn with_positive_keeps_negative() {
        let p = TtlPolicy::paper_default().with_positive(SimDuration::from_days(3));
        assert_eq!(p.positive(), SimDuration::from_days(3));
        assert_eq!(p.negative(), SimDuration::from_hours(2));
    }

    #[test]
    fn serde_roundtrip() {
        let p = TtlPolicy::paper_default();
        let json = serde_json::to_string(&p).unwrap();
        assert_eq!(p, serde_json::from_str::<TtlPolicy>(&json).unwrap());
    }
}
