//! Tokenized domain identities: content fingerprints, a fast hasher and an
//! interner for the hot matching path.
//!
//! Domain names are the hottest values in the pipeline: every raw lookup
//! probes a TTL cache, every observed lookup probes the matcher's confirmed
//! set, and both are keyed by name. Re-hashing a 10–60 byte string with a
//! DoS-resistant hasher on every probe dominates those paths, so each
//! [`DomainName`](crate::DomainName) carries a [`DomainId`] — a 64-bit
//! content fingerprint computed once at construction. `Hash` for a domain
//! name writes only that `u64`, and the [`FxHasher`] in this module folds a
//! `u64` into a table slot with a single multiply, so cache and matcher
//! probes cost one multiply instead of one string hash. Equality still
//! compares the underlying text (after an id fast-path), so a fingerprint
//! collision can never conflate two distinct names.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::hash::{BuildHasherDefault, Hasher};

/// The multiplier from the FxHash family (Firefox's `rustc-hash` lineage):
/// a 64-bit odd constant with good avalanche behaviour under
/// rotate-xor-multiply mixing.
const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Hashes a byte string with the FxHash rotate-xor-multiply scheme.
///
/// This is **not** a cryptographic or DoS-resistant hash; it is a fast,
/// deterministic content fingerprint. BotMeter's inputs are simulation
/// traces (or analyst-supplied feeds), not adversarial hash-flooding
/// attempts, and every equality check still falls back to the full string.
///
/// # Example
///
/// ```
/// use botmeter_dns::fx_hash64;
/// assert_eq!(fx_hash64(b"a.example"), fx_hash64(b"a.example"));
/// assert_ne!(fx_hash64(b"a.example"), fx_hash64(b"b.example"));
/// ```
pub fn fx_hash64(bytes: &[u8]) -> u64 {
    let mut hash = 0u64;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        hash = fx_mix(hash, word);
    }
    let rest = chunks.remainder();
    if !rest.is_empty() {
        let mut tail = [0u8; 8];
        tail[..rest.len()].copy_from_slice(rest);
        hash = fx_mix(hash, u64::from_le_bytes(tail));
    }
    // Fold in the length so "a\0\0..." padding cannot collide with "a".
    finalize(fx_mix(hash, bytes.len() as u64))
}

#[inline]
fn fx_mix(hash: u64, word: u64) -> u64 {
    (hash.rotate_left(5) ^ word).wrapping_mul(FX_SEED)
}

/// Murmur3-style avalanche finalizer. The rotate-multiply rounds only
/// propagate bit differences upward, leaving the low bits — the ones a hash
/// table indexes with — clustered for similar strings; the xor-shifts fold
/// the well-mixed high bits back down.
#[inline]
fn finalize(mut h: u64) -> u64 {
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    h ^ (h >> 33)
}

/// A 64-bit content fingerprint of a domain name.
///
/// Equal names always have equal ids; distinct names have distinct ids with
/// overwhelming probability (and code that must be collision-proof — the
/// cache, the matcher — compares the text when ids agree).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DomainId(pub u64);

impl DomainId {
    /// Fingerprints a name's text. `DomainName` construction calls this
    /// once; everything downstream reuses the stored id.
    pub fn of(text: &str) -> DomainId {
        DomainId(fx_hash64(text.as_bytes()))
    }
}

impl fmt::Display for DomainId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// A fast, non-cryptographic [`Hasher`] in the FxHash family.
///
/// Designed for keys that already hash themselves as a single `u64` (like
/// `DomainName`, which writes its [`DomainId`]): one `write_u64` is one
/// rotate-xor-multiply.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl Hasher for FxHasher {
    fn finish(&self) -> u64 {
        self.hash
    }

    fn write(&mut self, bytes: &[u8]) {
        self.hash = fx_mix(self.hash, fx_hash64(bytes));
    }

    fn write_u8(&mut self, i: u8) {
        self.hash = fx_mix(self.hash, i as u64);
    }

    fn write_u32(&mut self, i: u32) {
        self.hash = fx_mix(self.hash, i as u64);
    }

    fn write_u64(&mut self, i: u64) {
        self.hash = fx_mix(self.hash, i);
    }

    fn write_usize(&mut self, i: usize) {
        self.hash = fx_mix(self.hash, i as u64);
    }
}

/// [`std::hash::BuildHasher`] for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed through [`FxHasher`] — the hot-path table type for
/// domain-keyed state (resolver caches, matcher sets, valid-domain sets).
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` hashed through [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// Where one interned name lives inside the interner's arenas: its byte
/// range in the contiguous `bytes` storage and its label-boundary range in
/// the `label_starts` table. Both are plain offsets, so `DomainId → bytes`
/// resolution is two array indexes with no pointer chase.
#[derive(Debug, Clone, Copy)]
struct ArenaSpan {
    /// Start of the name's bytes in the bytes arena.
    offset: u32,
    /// Name length in bytes (validated names are ≤ 253 bytes).
    len: u16,
    /// Start of the name's label boundaries in the label-offset arena.
    label_offset: u32,
    /// Number of labels (≤ 127 for a validated name).
    label_count: u16,
}

/// Deduplicates [`DomainName`](crate::DomainName) allocations: interning a
/// name returns the canonical `Arc`-backed instance, so a pool that is
/// materialised repeatedly (generators re-derive epoch pools for the
/// authority, the matcher and the simulator) shares one allocation per
/// distinct name instead of one per materialisation.
///
/// Every interned name is also appended to a contiguous **bytes arena**
/// with an offset table, so a [`DomainId`] resolves back to its text
/// ([`resolve_bytes`](Self::resolve_bytes) / [`resolve_str`](Self::resolve_str)
/// / [`resolve`](Self::resolve)) by indexing — no `Arc` dereference, no
/// hash-table walk over `Arc<str>` allocations scattered across the heap.
/// Label boundaries are precomputed at intern time, so
/// [`tld_of`](Self::tld_of), [`first_label_of`](Self::first_label_of) and
/// [`labels_of`](Self::labels_of) never rescan the text for dots.
///
/// # Example
///
/// ```
/// use botmeter_dns::{DomainInterner, DomainName};
/// let mut interner = DomainInterner::new();
/// let a: DomainName = "abc.example".parse()?;
/// let b: DomainName = "abc.example".parse()?;
/// assert!(!std::ptr::eq(a.as_str(), b.as_str())); // two allocations
/// let a = interner.intern(a);
/// let b = interner.intern(b);
/// assert!(std::ptr::eq(a.as_str(), b.as_str())); // one canonical Arc
/// assert_eq!(interner.len(), 1);
/// assert_eq!(interner.resolve_str(a.id()), Some("abc.example"));
/// assert_eq!(interner.tld_of(a.id()), Some("example"));
/// # Ok::<(), botmeter_dns::ParseDomainError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct DomainInterner {
    table: FxHashSet<crate::DomainName>,
    /// `DomainId` → slot in `names`/`spans`.
    slots: FxHashMap<DomainId, u32>,
    /// Canonical names by slot, for zero-cost rehydration at egress edges.
    names: Vec<crate::DomainName>,
    /// Contiguous, append-only storage of every interned name's bytes.
    bytes: Vec<u8>,
    /// Per-slot location of a name's bytes and label boundaries.
    spans: Vec<ArenaSpan>,
    /// Concatenated per-name label start positions (name-relative; a
    /// validated name is ≤ 253 bytes, so `u8` positions suffice).
    label_starts: Vec<u8>,
}

impl DomainInterner {
    /// An empty interner.
    pub fn new() -> Self {
        DomainInterner::default()
    }

    /// An empty interner pre-sized for `capacity` distinct names.
    pub fn with_capacity(capacity: usize) -> Self {
        DomainInterner {
            table: FxHashSet::with_capacity_and_hasher(capacity, FxBuildHasher::default()),
            slots: FxHashMap::with_capacity_and_hasher(capacity, FxBuildHasher::default()),
            names: Vec::with_capacity(capacity),
            bytes: Vec::new(),
            spans: Vec::with_capacity(capacity),
            label_starts: Vec::new(),
        }
    }

    /// Returns the canonical instance of `name`, registering it if it is
    /// new. The returned value always compares equal to the input; if an
    /// equal name was interned before, its allocation is reused.
    ///
    /// # Panics
    ///
    /// Panics if a distinct name with the same 64-bit fingerprint was
    /// interned before — a content-hash collision (probability ~2⁻⁶⁴ per
    /// pair) that would make id-resident records ambiguous.
    pub fn intern(&mut self, name: crate::DomainName) -> crate::DomainName {
        match self.table.get(&name) {
            Some(canonical) => canonical.clone(),
            None => {
                self.register(&name);
                self.table.insert(name.clone());
                name
            }
        }
    }

    /// Appends a new name to the bytes/label arenas and its id to the slot
    /// table. Only called for names not yet in `table`.
    fn register(&mut self, name: &crate::DomainName) {
        let id = name.id();
        if let Some(&slot) = self.slots.get(&id) {
            // `table` missed but the id is taken: a fingerprint collision
            // between distinct texts. Refuse rather than conflate.
            assert!(
                self.names[slot as usize] == *name,
                "DomainId fingerprint collision: {:?} vs {:?}",
                self.names[slot as usize].as_str(),
                name.as_str(),
            );
            return;
        }
        let text = name.as_bytes();
        let offset = u32::try_from(self.bytes.len()).expect("bytes arena exceeds u32 range");
        let label_offset =
            u32::try_from(self.label_starts.len()).expect("label arena exceeds u32 range");
        self.bytes.extend_from_slice(text);
        // A label starts at 0 and after every dot; positions fit in u8
        // because validated names are at most 253 bytes long.
        self.label_starts.push(0);
        let mut label_count = 1u16;
        for (i, &b) in text.iter().enumerate() {
            if b == b'.' {
                self.label_starts.push((i + 1) as u8);
                label_count += 1;
            }
        }
        let slot = u32::try_from(self.names.len()).expect("slot table exceeds u32 range");
        self.spans.push(ArenaSpan {
            offset,
            len: text.len() as u16,
            label_offset,
            label_count,
        });
        self.names.push(name.clone());
        self.slots.insert(id, slot);
    }

    /// Parses and interns a string in one step.
    ///
    /// # Errors
    ///
    /// Propagates the name-validation failure.
    pub fn intern_str(&mut self, s: &str) -> Result<crate::DomainName, crate::ParseDomainError> {
        Ok(self.intern(s.parse()?))
    }

    /// Whether an equal name has already been interned.
    pub fn contains(&self, name: &crate::DomainName) -> bool {
        self.table.contains(name)
    }

    /// Whether a name with this fingerprint has been interned.
    pub fn contains_id(&self, id: DomainId) -> bool {
        self.slots.contains_key(&id)
    }

    /// Number of distinct names interned.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Whether the interner is empty.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// The arena span of an interned id, if any.
    #[inline]
    fn span(&self, id: DomainId) -> Option<ArenaSpan> {
        self.slots.get(&id).map(|&slot| self.spans[slot as usize])
    }

    /// The interned name's bytes, straight out of the contiguous arena —
    /// the zero-indirection representation byte-level matchers sweep.
    #[inline]
    pub fn resolve_bytes(&self, id: DomainId) -> Option<&[u8]> {
        self.span(id)
            .map(|s| &self.bytes[s.offset as usize..s.offset as usize + s.len as usize])
    }

    /// The interned name's text. Arena bytes are validated ASCII, so the
    /// UTF-8 check is a formality the optimiser sees through.
    #[inline]
    pub fn resolve_str(&self, id: DomainId) -> Option<&str> {
        self.resolve_bytes(id)
            .map(|b| std::str::from_utf8(b).expect("interned names are ASCII"))
    }

    /// The canonical [`DomainName`](crate::DomainName) for an interned id —
    /// the rehydration point where id-resident records regain their
    /// `Arc`-backed text at egress edges.
    #[inline]
    pub fn resolve(&self, id: DomainId) -> Option<&crate::DomainName> {
        self.slots.get(&id).map(|&slot| &self.names[slot as usize])
    }

    /// The final label (TLD) of an interned name, via the precomputed
    /// label-boundary table — no rescan for dots.
    #[inline]
    pub fn tld_of(&self, id: DomainId) -> Option<&str> {
        let s = self.span(id)?;
        let last = self.label_starts[(s.label_offset + u32::from(s.label_count) - 1) as usize];
        let bytes =
            &self.bytes[s.offset as usize + last as usize..s.offset as usize + s.len as usize];
        Some(std::str::from_utf8(bytes).expect("interned names are ASCII"))
    }

    /// The first label (the DGA-generated part) of an interned name, via
    /// the precomputed label boundaries.
    #[inline]
    pub fn first_label_of(&self, id: DomainId) -> Option<&str> {
        let s = self.span(id)?;
        let end = if s.label_count > 1 {
            // The next label starts one past this label's trailing dot.
            s.offset as usize + self.label_starts[(s.label_offset + 1) as usize] as usize - 1
        } else {
            s.offset as usize + s.len as usize
        };
        let bytes = &self.bytes[s.offset as usize..end];
        Some(std::str::from_utf8(bytes).expect("interned names are ASCII"))
    }

    /// Number of labels of an interned name.
    #[inline]
    pub fn label_count_of(&self, id: DomainId) -> Option<usize> {
        self.span(id).map(|s| s.label_count as usize)
    }

    /// Iterates an interned name's labels left to right, from the
    /// precomputed boundary table.
    pub fn labels_of(&self, id: DomainId) -> Option<impl Iterator<Item = &str>> {
        let s = self.span(id)?;
        let starts = &self.label_starts
            [s.label_offset as usize..s.label_offset as usize + s.label_count as usize];
        let name = &self.bytes[s.offset as usize..s.offset as usize + s.len as usize];
        Some(starts.iter().enumerate().map(move |(i, &start)| {
            let end = starts
                .get(i + 1)
                .map(|&next| next as usize - 1)
                .unwrap_or(name.len());
            std::str::from_utf8(&name[start as usize..end]).expect("interned names are ASCII")
        }))
    }

    /// Total bytes held by the contiguous bytes arena.
    pub fn arena_bytes(&self) -> usize {
        self.bytes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DomainName;
    use std::hash::BuildHasher;

    #[test]
    fn fingerprint_is_deterministic_and_length_aware() {
        assert_eq!(fx_hash64(b"abc.example"), fx_hash64(b"abc.example"));
        assert_ne!(fx_hash64(b"a"), fx_hash64(b"a\0"));
        assert_ne!(fx_hash64(b""), fx_hash64(b"\0"));
        // 8-byte boundary handling: chunked and tail bytes both mixed.
        assert_ne!(fx_hash64(b"12345678"), fx_hash64(b"12345679"));
        assert_ne!(fx_hash64(b"123456789"), fx_hash64(b"123456788"));
    }

    #[test]
    fn fingerprints_spread_over_generated_names() {
        // A crude avalanche check on the low bits (the bits a hash table
        // actually uses): 4096 uniform draws into 4096 buckets occupy
        // ~63% of them (1 - 1/e); heavy clustering would land far lower.
        let mut low_bits = std::collections::HashSet::new();
        for i in 0..4096u64 {
            let h = fx_hash64(format!("bot{i}.example").as_bytes());
            low_bits.insert(h & 0xfff);
        }
        assert!(
            low_bits.len() > 2400,
            "low bits cluster: {}",
            low_bits.len()
        );
    }

    #[test]
    fn hasher_uses_written_u64_directly() {
        let build = FxBuildHasher::default();
        let a = build.hash_one(42u64);
        let b = build.hash_one(42u64);
        assert_eq!(a, b);
        assert_ne!(build.hash_one(42u64), build.hash_one(43u64));
    }

    #[test]
    fn interner_canonicalises_allocations() {
        let mut interner = DomainInterner::with_capacity(8);
        let a: DomainName = "x.example".parse().unwrap();
        let b: DomainName = "x.example".parse().unwrap();
        let a = interner.intern(a);
        let b = interner.intern(b);
        assert!(std::ptr::eq(a.as_str(), b.as_str()));
        assert_eq!(interner.len(), 1);
        assert!(interner.contains(&a));
        let c = interner.intern_str("y.example").unwrap();
        assert_eq!(interner.len(), 2);
        assert!(!interner.is_empty());
        assert_ne!(a, c);
    }

    #[test]
    fn domain_ids_match_fingerprints() {
        let d: DomainName = "q3hbx07a.example".parse().unwrap();
        assert_eq!(d.id(), DomainId::of("q3hbx07a.example"));
        assert_eq!(d.id().0, fx_hash64(b"q3hbx07a.example"));
        assert_eq!(format!("{}", DomainId(0xabc)), "0000000000000abc");
    }

    #[test]
    fn arena_resolves_interned_ids() {
        let mut interner = DomainInterner::new();
        let a = interner.intern_str("foo.bar.example").unwrap();
        let b = interner.intern_str("x.co").unwrap();
        assert!(interner.contains_id(a.id()));
        assert_eq!(interner.resolve_str(a.id()), Some("foo.bar.example"));
        assert_eq!(interner.resolve_bytes(b.id()), Some(&b"x.co"[..]));
        assert_eq!(interner.resolve(a.id()), Some(&a));
        assert_eq!(interner.resolve(DomainId(12345)), None);
        assert!(!interner.contains_id(DomainId(12345)));
        assert_eq!(
            interner.arena_bytes(),
            "foo.bar.example".len() + "x.co".len()
        );
        // Re-interning an equal name must not grow the arena.
        interner.intern_str("foo.bar.example").unwrap();
        assert_eq!(
            interner.arena_bytes(),
            "foo.bar.example".len() + "x.co".len()
        );
    }

    #[test]
    fn label_offsets_match_rescanning_accessors() {
        let mut interner = DomainInterner::new();
        for s in [
            "a.example",
            "foo.bar.example",
            "q3hbx07a4mlp.biz",
            "0-0.ru",
            "x.co.uk",
            "single",
            "a.b.c.d.e.f",
        ] {
            let name = interner.intern_str(s).unwrap();
            let id = name.id();
            assert_eq!(interner.tld_of(id), Some(name.tld()), "{s}");
            assert_eq!(interner.first_label_of(id), Some(name.first_label()), "{s}");
            assert_eq!(interner.label_count_of(id), Some(name.label_count()), "{s}");
            assert_eq!(
                interner.labels_of(id).unwrap().collect::<Vec<_>>(),
                name.labels().collect::<Vec<_>>(),
                "{s}"
            );
        }
        assert!(interner.labels_of(DomainId(7)).is_none());
        assert_eq!(interner.tld_of(DomainId(7)), None);
        assert_eq!(interner.first_label_of(DomainId(7)), None);
    }
}
