//! Trace (de)serialisation: JSON-Lines streams of lookup records.
//!
//! Real deployments tap the border server and persist the forwarded-lookup
//! stream; the `simulate` / `estimate` command-line tools in
//! `botmeter-bench` exchange traces in this format, one JSON object per
//! line, so they compose with standard shell tooling.

use serde::de::DeserializeOwned;
use serde::Serialize;
use std::fmt;
use std::io::{self, BufRead, Write};

/// Writes records as JSON Lines (one object per line).
///
/// # Errors
///
/// Propagates serialisation and I/O failures.
///
/// # Example
///
/// ```
/// use botmeter_dns::{trace, ObservedLookup, ServerId, SimInstant};
/// let records = vec![ObservedLookup::new(
///     SimInstant::ZERO, ServerId(1), "nx.example".parse()?)];
/// let mut buf = Vec::new();
/// trace::write_jsonl(&records, &mut buf)?;
/// let text = String::from_utf8(buf)?;
/// assert!(text.contains("nx.example"));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn write_jsonl<T: Serialize, W: Write>(records: &[T], mut writer: W) -> Result<(), TraceError> {
    for (i, record) in records.iter().enumerate() {
        let line = serde_json::to_string(record).map_err(|source| TraceError::Serialize {
            line: i + 1,
            source,
        })?;
        writer.write_all(line.as_bytes()).map_err(TraceError::Io)?;
        writer.write_all(b"\n").map_err(TraceError::Io)?;
    }
    Ok(())
}

/// Reads a JSON-Lines stream into records, skipping blank lines.
///
/// # Errors
///
/// Reports the 1-based line number of the first malformed record.
///
/// # Example
///
/// ```
/// use botmeter_dns::{trace, ObservedLookup};
/// let text = r#"{"t":0,"server":1,"domain":"nx.example"}"#;
/// let records: Vec<ObservedLookup> = trace::read_jsonl(text.as_bytes())?;
/// assert_eq!(records.len(), 1);
/// # Ok::<(), botmeter_dns::trace::TraceError>(())
/// ```
pub fn read_jsonl<T: DeserializeOwned, R: BufRead>(reader: R) -> Result<Vec<T>, TraceError> {
    read_jsonl_iter(reader).collect()
}

/// Streaming [`read_jsonl`]: yields one record (or the first error) at a
/// time without ever materialising the whole trace — the import path for
/// unbounded feeds (`botmeterd` reads its stdin through this, chunking
/// records into ingest shards).
///
/// Blank lines are skipped; parse errors carry the 1-based line number.
///
/// # Example
///
/// ```
/// use botmeter_dns::{trace, ObservedLookup};
/// let text = "{\"t\":0,\"server\":1,\"domain\":\"nx.example\"}\n\n\
///             {\"t\":5,\"server\":2,\"domain\":\"nx.example\"}\n";
/// let records: Vec<ObservedLookup> = trace::read_jsonl_iter(text.as_bytes())
///     .collect::<Result<_, _>>()?;
/// assert_eq!(records.len(), 2);
/// # Ok::<(), botmeter_dns::trace::TraceError>(())
/// ```
pub fn read_jsonl_iter<T: DeserializeOwned, R: BufRead>(
    reader: R,
) -> impl Iterator<Item = Result<T, TraceError>> {
    reader
        .lines()
        .enumerate()
        .filter_map(|(i, line)| match line {
            Err(e) => Some(Err(TraceError::Io(e))),
            Ok(line) => {
                let trimmed = line.trim();
                if trimmed.is_empty() {
                    return None;
                }
                Some(
                    serde_json::from_str(trimmed).map_err(|source| TraceError::Parse {
                        line: i + 1,
                        source,
                    }),
                )
            }
        })
}

/// A trace I/O failure.
#[derive(Debug)]
pub enum TraceError {
    /// Underlying reader/writer failure.
    Io(io::Error),
    /// A record failed to serialise.
    Serialize {
        /// 1-based record number.
        line: usize,
        /// The serde_json failure.
        source: serde_json::Error,
    },
    /// A line failed to parse.
    Parse {
        /// 1-based line number in the input.
        line: usize,
        /// The serde_json failure.
        source: serde_json::Error,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace i/o failed: {e}"),
            TraceError::Serialize { line, source } => {
                write!(f, "failed to serialise record {line}: {source}")
            }
            TraceError::Parse { line, source } => {
                write!(f, "malformed trace line {line}: {source}")
            }
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            TraceError::Serialize { source, .. } | TraceError::Parse { source, .. } => Some(source),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClientId, ObservedLookup, RawLookup, ServerId, SimInstant};

    fn observed(n: usize) -> Vec<ObservedLookup> {
        (0..n)
            .map(|i| {
                ObservedLookup::new(
                    SimInstant::from_millis(i as u64 * 100),
                    ServerId(1),
                    format!("d{i}.example").parse().unwrap(),
                )
            })
            .collect()
    }

    #[test]
    fn observed_roundtrip() {
        let records = observed(50);
        let mut buf = Vec::new();
        write_jsonl(&records, &mut buf).unwrap();
        let back: Vec<ObservedLookup> = read_jsonl(buf.as_slice()).unwrap();
        assert_eq!(records, back);
    }

    #[test]
    fn raw_roundtrip() {
        let records = vec![RawLookup::new(
            SimInstant::from_millis(7),
            ClientId(3),
            "a.example".parse().unwrap(),
        )];
        let mut buf = Vec::new();
        write_jsonl(&records, &mut buf).unwrap();
        let back: Vec<RawLookup> = read_jsonl(buf.as_slice()).unwrap();
        assert_eq!(records, back);
    }

    #[test]
    fn blank_lines_skipped() {
        let text = "\n{\"t\":0,\"server\":1,\"domain\":\"a.example\"}\n\n";
        let back: Vec<ObservedLookup> = read_jsonl(text.as_bytes()).unwrap();
        assert_eq!(back.len(), 1);
    }

    #[test]
    fn malformed_line_reports_position() {
        let text = "{\"t\":0,\"server\":1,\"domain\":\"a.example\"}\nnot-json\n";
        let err = read_jsonl::<ObservedLookup, _>(text.as_bytes()).unwrap_err();
        match err {
            TraceError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other}"),
        }
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn invalid_domain_rejected_at_parse() {
        let text = "{\"t\":0,\"server\":1,\"domain\":\"NOT VALID\"}";
        assert!(read_jsonl::<ObservedLookup, _>(text.as_bytes()).is_err());
    }

    #[test]
    fn empty_input_is_empty_vec() {
        let back: Vec<ObservedLookup> = read_jsonl("".as_bytes()).unwrap();
        assert!(back.is_empty());
    }
}
