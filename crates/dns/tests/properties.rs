//! Property-based tests for the DNS substrate.

use botmeter_dns::{
    trace, Answer, ClientId, DnsCache, DomainId, DomainInterner, DomainName, ObservedLookup,
    RawLookup, ServerId, SimDuration, SimInstant, StaticAuthority, Topology, TtlPolicy,
};
use proptest::prelude::*;

fn arb_domain() -> impl Strategy<Value = DomainName> {
    "[a-z][a-z0-9]{2,20}".prop_map(|label| format!("{label}.example").parse().expect("valid"))
}

/// Multi-label names with 2–5 labels of varying width, so the interner's
/// label-boundary table sees every label count the arena stores.
fn arb_deep_domain() -> impl Strategy<Value = DomainName> {
    prop::collection::vec("[a-z][a-z0-9]{0,15}", 2..6)
        .prop_map(|labels| labels.join(".").parse().expect("joined valid labels parse"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Domain parsing accepts what it should and round-trips exactly.
    #[test]
    fn domain_roundtrip(d in arb_domain()) {
        let s = d.to_string();
        let back: DomainName = s.parse().expect("roundtrip");
        prop_assert_eq!(d, back);
    }

    /// Fuzz: parsing arbitrary printable garbage never panics, and every
    /// accepted name satisfies the documented invariants and round-trips
    /// through its display form.
    #[test]
    fn domain_parse_total_on_printable_garbage(s in "[ -~]{0,80}") {
        // Graceful rejection is the point; only accepted names carry proofs.
        if let Ok(d) = s.parse::<DomainName>() {
            let text = d.to_string();
            prop_assert!(!text.is_empty() && text.len() <= 253);
            prop_assert!(text.split('.').all(|l| !l.is_empty() && l.len() <= 63));
            let back: DomainName = text.parse().expect("accepted names round-trip");
            prop_assert_eq!(d, back);
        }
    }

    /// Fuzz: dot-heavy inputs (leading/trailing/doubled dots) are rejected
    /// gracefully — an empty label must never survive parsing.
    #[test]
    fn domain_parse_rejects_empty_labels(label in "[a-z]{1,10}") {
        for bad in [
            format!(".{label}.example"),
            format!("{label}..example"),
            format!("{label}.example."),
            ".".to_string(),
        ] {
            prop_assert!(bad.parse::<DomainName>().is_err(), "accepted {bad:?}");
        }
    }

    /// Fuzz: names over 253 bytes are rejected even when every label is
    /// individually valid.
    #[test]
    fn domain_parse_rejects_oversize_names(labels in 6usize..12) {
        let name = (0..labels).map(|_| "a".repeat(50)).collect::<Vec<_>>().join(".");
        prop_assert!(name.len() > 253);
        prop_assert!(name.parse::<DomainName>().is_err());
    }

    /// Fuzz: a single bad character anywhere poisons the whole name.
    #[test]
    fn domain_parse_rejects_bad_characters(
        prefix in "[a-z]{1,8}",
        bad in "[A-Z_!@#$%&* ]",
        suffix in "[a-z]{1,8}",
    ) {
        let name = format!("{prefix}{bad}{suffix}.example");
        prop_assert!(name.parse::<DomainName>().is_err(), "accepted {name:?}");
    }

    /// Fuzz: labels may contain interior hyphens but never edge hyphens.
    #[test]
    fn domain_parse_hyphen_placement(label in "[a-z]{1,8}") {
        prop_assert!(format!("-{label}.example").parse::<DomainName>().is_err());
        prop_assert!(format!("{label}-.example").parse::<DomainName>().is_err());
        prop_assert!(format!("a-{label}.example").parse::<DomainName>().is_ok());
    }

    /// A cache entry is served strictly before its expiry and never after.
    #[test]
    fn cache_expiry_boundary(
        d in arb_domain(),
        stored_at in 0u64..1_000_000,
        ttl_ms in 1u64..10_000_000,
        probe_offset in 0u64..20_000_000,
    ) {
        let mut cache = DnsCache::new();
        let t0 = SimInstant::from_millis(stored_at);
        cache.store_with_ttl(t0, d.clone(), Answer::NxDomain, SimDuration::from_millis(ttl_ms));
        let probe = t0 + SimDuration::from_millis(probe_offset);
        let hit = cache.lookup(probe, &d).is_some();
        prop_assert_eq!(hit, probe_offset < ttl_ms);
    }

    /// Quantisation floors to a lattice point no further than g−1 away.
    #[test]
    fn quantize_properties(ms in 0u64..10_000_000, g in 1u64..100_000) {
        let t = SimInstant::from_millis(ms);
        let q = t.quantize(SimDuration::from_millis(g));
        prop_assert!(q <= t);
        prop_assert_eq!(q.as_millis() % g, 0);
        prop_assert!(ms - q.as_millis() < g);
    }

    /// Instant arithmetic: (t + d) − d == t and ordering is preserved.
    #[test]
    fn instant_arithmetic(ms in 0u64..u32::MAX as u64, d in 0u64..u32::MAX as u64) {
        let t = SimInstant::from_millis(ms);
        let dur = SimDuration::from_millis(d);
        prop_assert_eq!((t + dur) - dur, t);
        prop_assert!(t + dur >= t);
        prop_assert_eq!((t + dur) - t, dur);
    }

    /// Through a single-resolver topology, the same domain is never
    /// forwarded twice within its TTL, regardless of client interleaving.
    #[test]
    fn no_double_forwarding_within_ttl(
        offsets in prop::collection::vec(0u64..3_600_000, 2..40),
        d in arb_domain(),
    ) {
        let mut topo = Topology::single_local(TtlPolicy::paper_default());
        let auth = StaticAuthority::empty();
        let mut sorted = offsets.clone();
        sorted.sort_unstable();
        let mut forwarded = 0;
        for (i, &ms) in sorted.iter().enumerate() {
            let raw = RawLookup::new(
                SimInstant::from_millis(ms),
                ClientId(i as u32),
                d.clone(),
            );
            if topo.process(&raw, &auth).expect("routable").is_some() {
                forwarded += 1;
            }
        }
        // All lookups fall within one 2h negative TTL window of the first.
        prop_assert_eq!(forwarded, 1, "offsets {:?}", sorted);
    }

    /// Trace JSONL round-trips arbitrary observed streams.
    #[test]
    fn trace_roundtrip(
        entries in prop::collection::vec((0u64..1_000_000, 0u32..5), 0..50),
    ) {
        let records: Vec<ObservedLookup> = entries
            .iter()
            .enumerate()
            .map(|(i, &(ms, server))| ObservedLookup::new(
                SimInstant::from_millis(ms),
                ServerId(server),
                format!("d{i}.example").parse().expect("valid"),
            ))
            .collect();
        let mut buf = Vec::new();
        trace::write_jsonl(&records, &mut buf).expect("write");
        let back: Vec<ObservedLookup> = trace::read_jsonl(buf.as_slice()).expect("read");
        prop_assert_eq!(records, back);
    }

    /// Arena round-trip: every interned name resolves back — as a handle,
    /// as text and as raw arena bytes — bit-identical to what went in,
    /// and ids the interner never issued resolve to nothing.
    #[test]
    fn interner_arena_round_trips_arbitrary_names(
        names in prop::collection::vec(arb_deep_domain(), 1..40),
    ) {
        let mut interner = DomainInterner::new();
        for name in &names {
            let handle = interner.intern(name.clone());
            prop_assert_eq!(&handle, name);
        }
        for name in &names {
            let id = name.id();
            prop_assert!(interner.contains_id(id));
            prop_assert_eq!(interner.resolve(id), Some(name));
            prop_assert_eq!(interner.resolve_str(id), Some(name.as_str()));
            prop_assert_eq!(interner.resolve_bytes(id), Some(name.as_str().as_bytes()));
        }
        // The arena holds exactly the distinct names' bytes, and an id
        // derived from text the interner never saw finds nothing.
        let distinct: std::collections::HashSet<&str> =
            names.iter().map(DomainName::as_str).collect();
        prop_assert_eq!(
            interner.arena_bytes(),
            distinct.iter().map(|s| s.len()).sum::<usize>()
        );
        let stranger = DomainId::of("never-interned.invalid");
        prop_assert!(interner.resolve(stranger).is_none());
        prop_assert!(interner.resolve_bytes(stranger).is_none());
    }

    /// The precomputed label-boundary table agrees with rescanning the
    /// resolved text for dots, for every accessor that uses it.
    #[test]
    fn interner_label_offsets_match_rescanning(
        names in prop::collection::vec(arb_deep_domain(), 1..40),
    ) {
        let mut interner = DomainInterner::new();
        for name in &names {
            interner.intern(name.clone());
        }
        for name in &names {
            let id = name.id();
            let text = name.as_str();
            let rescan: Vec<&str> = text.split('.').collect();
            prop_assert_eq!(interner.tld_of(id), rescan.last().copied());
            prop_assert_eq!(interner.first_label_of(id), rescan.first().copied());
            prop_assert_eq!(interner.label_count_of(id), Some(rescan.len()));
            let walked: Vec<&str> =
                interner.labels_of(id).expect("interned id has labels").collect();
            prop_assert_eq!(walked, rescan);
        }
    }

    /// Cache hit/miss counters always sum to the number of lookups.
    #[test]
    fn cache_stats_conservation(ops in prop::collection::vec((0u64..100, any::<bool>()), 1..100)) {
        let mut cache = DnsCache::new();
        let ttl = TtlPolicy::paper_default();
        let mut lookups = 0u64;
        for (i, &(key, store)) in ops.iter().enumerate() {
            let d: DomainName = format!("k{key}.example").parse().expect("valid");
            let t = SimInstant::from_millis(i as u64 * 1000);
            if store {
                cache.store(t, d, Answer::NxDomain, &ttl);
            } else {
                cache.lookup(t, &d);
                lookups += 1;
            }
        }
        let s = cache.stats();
        prop_assert_eq!(s.hits() + s.misses, lookups);
    }
}
