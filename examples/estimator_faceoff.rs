//! Estimator face-off: every applicable estimator vs ground truth across
//! population sizes — a one-screen Fig. 6(a).
//!
//! ```sh
//! cargo run --release --example estimator_faceoff
//! ```

use botmeter::core::{
    absolute_relative_error, BernoulliEstimator, CoverageEstimator, EstimationContext, Estimator,
    PoissonEstimator, TimingEstimator,
};
use botmeter::dga::{BarrelClass, DgaFamily};
use botmeter::exec::ExecPolicy;
use botmeter::sim::ScenarioSpec;

fn main() {
    for family in [DgaFamily::murofet(), DgaFamily::new_goz()] {
        let mut estimators: Vec<Box<dyn Estimator>> = vec![Box::new(TimingEstimator)];
        match family.barrel_class() {
            BarrelClass::Uniform => estimators.push(Box::new(PoissonEstimator::new())),
            BarrelClass::RandomCut => {
                estimators.push(Box::new(BernoulliEstimator::default()));
                estimators.push(Box::new(CoverageEstimator));
            }
            _ => {}
        }

        println!(
            "== {} ({}) ==",
            family.name(),
            family.barrel_class().shorthand()
        );
        print!("{:>6} {:>8}", "N", "actual");
        for est in &estimators {
            print!(" {:>12} {:>8}", est.name(), "ARE");
        }
        println!();

        for n in [16u64, 32, 64, 128, 256] {
            let outcome = ScenarioSpec::builder(family.clone())
                .population(n)
                .seed(0xFACE ^ n)
                .build()
                .expect("valid scenario")
                .run(ExecPolicy::default());
            let ctx = EstimationContext::new(
                outcome.family().clone(),
                outcome.ttl(),
                outcome.granularity(),
            );
            let actual = outcome.ground_truth()[0] as f64;
            print!("{n:>6} {actual:>8}");
            for est in &estimators {
                let e = est.estimate(outcome.observed(), &ctx);
                print!(" {:>12.1} {:>8.3}", e, absolute_relative_error(e, actual));
            }
            println!();
        }
        println!();
    }
}
