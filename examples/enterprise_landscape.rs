//! Enterprise landscape: a month of multi-family infections in one
//! network, estimated day by day — a scaled-down Fig. 7.
//!
//! ```sh
//! cargo run --release --example enterprise_landscape
//! ```

use botmeter::core::{BernoulliEstimator, EstimationContext, Estimator, PoissonEstimator};
use botmeter::dga::{BarrelClass, DgaFamily};
use botmeter::exec::ExecPolicy;
use botmeter::matcher::{match_stream, ExactMatcher};
use botmeter::sim::{EnterpriseSpec, Infection, WaveConfig};

fn main() {
    // 30 days, two concurrent infections over benign background traffic.
    let spec = EnterpriseSpec::quick(7).with_days(30).with_infections(vec![
        Infection::new(DgaFamily::new_goz(), WaveConfig::brisk()),
        Infection::new(DgaFamily::ramnit(), WaveConfig::brisk()),
    ]);
    println!(
        "simulating {} days of enterprise DNS traffic...",
        spec.days()
    );
    let outcome = spec.run();
    println!(
        "raw lookups: {}, border-visible: {}\n",
        outcome.raw_count(),
        outcome.observed().len()
    );

    for (fi, family) in outcome.families().iter().enumerate() {
        let primary: Box<dyn Estimator> = if family.barrel_class() == BarrelClass::RandomCut {
            Box::new(BernoulliEstimator::default())
        } else {
            Box::new(PoissonEstimator::new())
        };
        println!(
            "== {} ({}) — daily populations via the {} estimator ==",
            family.name(),
            family.barrel_class().shorthand(),
            primary.name()
        );

        let matcher = ExactMatcher::from_family(family, 0..outcome.days() + 1);
        let matched = match_stream(outcome.observed(), &matcher, ExecPolicy::default());
        let lookups = matched.for_server(botmeter::dns::ServerId(1));
        let ctx = EstimationContext::new(family.clone(), outcome.ttl(), outcome.granularity());

        println!("day  actual  estimate");
        for day in 0..outcome.days() {
            let actual = outcome.ground_truth()[fi][day as usize];
            if actual == 0 {
                continue; // quiet day, like the paper's Fig. 7 x-axis
            }
            let slice: Vec<_> = lookups
                .iter()
                .filter(|l| l.t.epoch_day(family.epoch_len()) == day)
                .cloned()
                .collect();
            let estimate = primary.estimate(&slice, &ctx);
            println!("{day:<4} {actual:<7} {estimate:.1}");
        }
        println!();
    }
}
