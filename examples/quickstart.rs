//! Quickstart: simulate a DGA infection and chart its landscape.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Simulates one day of a newGoZ (randomcut-barrel) botnet behind a single
//! caching local resolver, then lets BotMeter recover the population from
//! the border-visible stream alone — the end-to-end pipeline of Fig. 2.

use botmeter::core::{absolute_relative_error, BotMeter, BotMeterConfig, ChartRequest};
use botmeter::dga::DgaFamily;
use botmeter::exec::ExecPolicy;
use botmeter::sim::ScenarioSpec;

fn main() {
    // 1. Simulate the "unknown" network: 64 newGoZ bots, paper-default
    //    TTLs (positive 1 day / negative 2 h), 100 ms timestamps.
    let spec = ScenarioSpec::builder(DgaFamily::new_goz())
        .population(64)
        .seed(2016)
        .build()
        .expect("valid scenario");
    let outcome = spec.run(ExecPolicy::default());

    println!(
        "simulated ground truth : {} active bots",
        outcome.ground_truth()[0]
    );
    println!("raw lookups issued     : {}", outcome.raw().len());
    println!(
        "border-visible lookups : {} (cache-filtered)",
        outcome.observed().len()
    );

    // 2. Point BotMeter at the observable stream. Model selection is
    //    automatic: newGoZ is AR, so the Bernoulli estimator is used.
    let meter = BotMeter::new(BotMeterConfig::new(outcome.family().clone()));
    let landscape = meter.chart_with(&ChartRequest::new(outcome.observed()));

    println!("\n{landscape}");
    let estimate = landscape.total_for_epoch(0);
    let actual = outcome.ground_truth()[0] as f64;
    println!(
        "estimate = {estimate:.1}, actual = {actual}, ARE = {:.3}",
        absolute_relative_error(estimate, actual)
    );
}
