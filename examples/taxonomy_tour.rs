//! Taxonomy tour: every DGA family preset in the library, its place in the
//! Fig. 3 grid, and how visible each one is behind a caching resolver.
//!
//! ```sh
//! cargo run --release --example taxonomy_tour
//! ```

use botmeter::dga::{known_families, DgaFamily};
use botmeter::exec::ExecPolicy;
use botmeter::sim::ScenarioSpec;

fn main() {
    println!("The Fig. 3 taxonomy grid:\n");
    for cell in known_families() {
        let families = if cell.families.is_empty() {
            "?".to_owned()
        } else {
            cell.families.join(", ")
        };
        println!(
            "  {:<20} × {:<18} {}",
            cell.pool.to_string(),
            cell.barrel.to_string(),
            families
        );
    }

    println!("\nPer-family presets and cache-visibility (16 bots, one epoch):\n");
    println!(
        "{:<12} {:<6} {:>8} {:>4} {:>6} {:>10}  {:>8} {:>9} {:>7}",
        "family", "cell", "θ∅", "θ∃", "θq", "δi", "raw", "visible", "ratio"
    );
    for family in [
        DgaFamily::murofet(),
        DgaFamily::srizbi(),
        DgaFamily::torpig(),
        DgaFamily::ramnit(),
        DgaFamily::qakbot(),
        DgaFamily::ranbyus(),
        DgaFamily::pushdo(),
        DgaFamily::conficker_c(),
        DgaFamily::pykspa(),
        DgaFamily::new_goz(),
        DgaFamily::necurs(),
    ] {
        let outcome = ScenarioSpec::builder(family.clone())
            .population(16)
            .seed(1)
            .build()
            .expect("presets are valid")
            .run(ExecPolicy::default());
        let raw = outcome.raw().len();
        let visible = outcome.observed().len();
        let p = family.params();
        println!(
            "{:<12} {:<6} {:>8} {:>4} {:>6} {:>10}  {:>8} {:>9} {:>6.1}%",
            family.name(),
            family.barrel_class().shorthand(),
            p.theta_nx(),
            p.theta_valid(),
            p.theta_q(),
            p.timing().to_string(),
            raw,
            visible,
            100.0 * visible as f64 / raw.max(1) as f64,
        );
    }
    println!("\nNote the AU rows: identical barrels + negative caching make most");
    println!("lookups invisible — the effect the Poisson estimator corrects for.");
}
