//! Evasion arms race: what happens to each estimator when the botmaster
//! fights back (the paper's future-work direction #3).
//!
//! ```sh
//! cargo run --release --example evasion_arms_race
//! ```

use botmeter::core::{
    absolute_relative_error, BernoulliEstimator, CoverageEstimator, EstimationContext, Estimator,
    PoissonEstimator, TimingEstimator,
};
use botmeter::dga::DgaFamily;
use botmeter::exec::ExecPolicy;
use botmeter::sim::{EvasionStrategy, ScenarioSpec};

fn main() {
    let strategies = [
        EvasionStrategy::None,
        EvasionStrategy::CoordinatedBurst {
            window_fraction: 0.1,
        },
        EvasionStrategy::StartCollusion { shared_starts: 4 },
        EvasionStrategy::DutyCycle { active_prob: 0.25 },
    ];

    for family in [DgaFamily::murofet(), DgaFamily::new_goz()] {
        let estimators: Vec<Box<dyn Estimator>> = match family.name() {
            "Murofet" => vec![Box::new(PoissonEstimator::new()), Box::new(TimingEstimator)],
            _ => vec![
                Box::new(BernoulliEstimator::default()),
                Box::new(CoverageEstimator),
                Box::new(TimingEstimator),
            ],
        };
        println!(
            "== {} ({}) — 64 configured bots ==",
            family.name(),
            family.barrel_class().shorthand()
        );
        print!("{:<24} {:>7}", "strategy", "active");
        for est in &estimators {
            print!(" {:>11}", est.name());
        }
        println!();

        for strategy in strategies {
            let outcome = ScenarioSpec::builder(family.clone())
                .population(64)
                .evasion(strategy)
                .seed(0xA53)
                .build()
                .expect("valid scenario")
                .run(ExecPolicy::default());
            let ctx = EstimationContext::new(
                outcome.family().clone(),
                outcome.ttl(),
                outcome.granularity(),
            );
            let active = outcome.ground_truth()[0] as f64;
            print!("{:<24} {:>7}", strategy.to_string(), active);
            for est in &estimators {
                let e = est.estimate(outcome.observed(), &ctx);
                print!(
                    " {:>5.1}/{:<5.2}",
                    e,
                    absolute_relative_error(e, active.max(1.0))
                );
            }
            println!();
        }
        println!("   (cells: estimate / ARE vs the active population)\n");
    }
    println!("Takeaways: coordinated bursts starve the Poisson gap statistic;");
    println!("start collusion makes a randomcut botnet impersonate ~4 bots to");
    println!("segment statistics; duty cycling is measured faithfully per-day");
    println!("but hides the true installed base.");
}
