//! End-to-end robustness: fault-injected scenarios must stay deterministic
//! across execution policies, the charting facade must degrade gracefully
//! (loss-aware rescaling, quality flags, typed parameter errors), and a
//! panicking task must not take its batch down with it.

use botmeter::core::{BotMeter, BotMeterConfig, CellQuality, ChartRequest, Error, Landscape};
use botmeter::dga::DgaFamily;
use botmeter::dns::{SimDuration, SimInstant};
use botmeter::exec::{try_run_indexed_with, ExecPolicy};
use botmeter::faults::{FaultModel, FaultPlan};
use botmeter::obs::Obs;
use botmeter::sim::ScenarioSpec;

fn force_parallel() {
    std::env::set_var("BOTMETER_THREADS", "4");
}

/// A representative lossy plan used across the tests below.
fn lossy_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(seed)
        .with(FaultModel::Drop { rate: 0.2 })
        .with(FaultModel::Jitter {
            max: SimDuration::from_secs(5),
        })
        .with(FaultModel::Duplicate { rate: 0.1 })
}

#[test]
fn faulted_landscape_is_bit_identical_across_policies() {
    force_parallel();
    let chart = |policy: ExecPolicy| -> Landscape {
        let outcome = ScenarioSpec::builder(DgaFamily::new_goz())
            .population(64)
            .num_epochs(2)
            .seed(31)
            .faults(lossy_plan(77))
            .build()
            .expect("valid spec")
            .run(policy);
        BotMeter::new(BotMeterConfig::new(outcome.family().clone())).chart_with(
            &ChartRequest::new(outcome.observed())
                .epochs(0..2)
                .policy(policy),
        )
    };
    let sequential = chart(ExecPolicy::Sequential);
    let parallel = chart(ExecPolicy::parallel());
    assert_eq!(parallel, sequential, "faulted landscape diverged");
    assert!(!sequential.is_empty());
}

#[test]
fn delivery_rate_correction_recovers_sampled_populations() {
    // A 1-in-2 export sampler halves the observed stream; declaring the
    // matching delivery rate must double the estimates right back.
    let outcome = ScenarioSpec::builder(DgaFamily::new_goz())
        .population(64)
        .seed(5)
        .faults(FaultPlan::new(3).with(FaultModel::Sample { keep_one_in: 2 }))
        .build()
        .expect("valid spec")
        .run(ExecPolicy::Sequential);
    let family = outcome.family().clone();
    let report = outcome.fault_report().expect("plan attached");
    assert!(
        report.delivery_rate() < 0.75,
        "sampler must thin the stream"
    );

    let naive = BotMeter::new(BotMeterConfig::new(family.clone()))
        .chart_with(&ChartRequest::new(outcome.observed()).policy(ExecPolicy::Sequential));
    let corrected = BotMeter::new(BotMeterConfig::new(family).delivery_rate(0.5))
        .chart_with(&ChartRequest::new(outcome.observed()).policy(ExecPolicy::Sequential));
    assert_eq!(naive.len(), corrected.len());
    for (n, c) in naive.entries().iter().zip(corrected.entries()) {
        assert_eq!(c.estimate, n.estimate * 2.0);
        assert_eq!(c.quality, CellQuality::Degraded);
    }
}

#[test]
fn try_chart_surfaces_typed_errors() {
    let meter = BotMeter::new(BotMeterConfig::new(DgaFamily::new_goz()).delivery_rate(f64::NAN));
    match meter.try_chart_with(&ChartRequest::new(&[]).policy(ExecPolicy::Sequential)) {
        Err(Error::BadDeliveryRate { rate }) => assert!(rate.is_nan()),
        other => panic!("expected BadDeliveryRate, got {other:?}"),
    }
    let meter = BotMeter::new(BotMeterConfig::new(DgaFamily::new_goz()));
    assert_eq!(
        meter.try_chart_with(&ChartRequest::new(&[]).epochs(2..2)),
        Err(Error::EmptyEpochRange { start: 2, end: 2 })
    );
}

#[test]
fn outage_degrades_but_never_corrupts_the_landscape() {
    // Black out a chunk of the day: estimates shrink but remain finite and
    // non-negative, and the pipeline never panics.
    let run = |plan: Option<FaultPlan>| {
        let mut builder = ScenarioSpec::builder(DgaFamily::murofet())
            .population(64)
            .seed(13);
        if let Some(plan) = plan {
            builder = builder.faults(plan);
        }
        let outcome = builder
            .build()
            .expect("valid spec")
            .run(ExecPolicy::Sequential);
        let meter = BotMeter::new(BotMeterConfig::new(outcome.family().clone()));
        meter.chart_with(&ChartRequest::new(outcome.observed()).policy(ExecPolicy::Sequential))
    };
    let clean = run(None);
    let outage = run(Some(FaultPlan::new(41).with(FaultModel::Outage {
        server: None,
        from: SimInstant::from_millis(0),
        until: SimInstant::from_millis(6 * 3_600_000),
    })));
    for entry in outage.entries() {
        assert!(entry.estimate.is_finite() && entry.estimate >= 0.0);
    }
    assert!(
        outage.total_for_epoch(0) <= clean.total_for_epoch(0),
        "an outage cannot inflate the population estimate"
    );
}

#[test]
fn one_panicking_task_in_a_thousand_fails_alone_end_to_end() {
    force_parallel();
    let (obs, registry) = Obs::collecting();
    // Silence the default panic hook for the intentionally panicking task.
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let results = try_run_indexed_with(ExecPolicy::parallel(), &obs, 1000, |i| {
        if i == 613 {
            panic!("injected failure at {i}");
        }
        i * 2
    });
    std::panic::set_hook(hook);
    assert_eq!(results.len(), 1000);
    let failures: Vec<_> = results
        .iter()
        .enumerate()
        .filter(|(_, r)| r.is_err())
        .collect();
    assert_eq!(failures.len(), 1, "exactly one structured per-item error");
    assert_eq!(failures[0].0, 613);
    let err = results[613].as_ref().unwrap_err();
    assert_eq!(err.index, 613);
    assert!(err.message.contains("injected failure at 613"));
    for (i, r) in results.iter().enumerate() {
        if i != 613 {
            assert_eq!(*r.as_ref().expect("healthy task"), i * 2);
        }
    }
    assert_eq!(
        registry.snapshot().counter("sched.exec.panics"),
        Some(1),
        "panic counter wired through obs"
    );
    // The pool is reusable: a follow-up batch on the same policy completes.
    let again = try_run_indexed_with(ExecPolicy::parallel(), &obs, 64, |i| i + 1);
    assert!(again.iter().all(|r| r.is_ok()));
}
