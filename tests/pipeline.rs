//! End-to-end integration: simulate → cache-filter → match → estimate,
//! across the taxonomy.

use botmeter::core::{
    absolute_relative_error, BotMeter, BotMeterConfig, ChartRequest, EstimationContext, Estimator,
    ModelKind, PoissonEstimator, TimingEstimator,
};
use botmeter::dga::DgaFamily;
use botmeter::dns::ServerId;
use botmeter::exec::ExecPolicy;
use botmeter::matcher::{match_stream, ExactMatcher};
use botmeter::sim::ScenarioSpec;

fn run(family: DgaFamily, n: u64, seed: u64) -> botmeter::sim::ScenarioOutcome {
    ScenarioSpec::builder(family)
        .population(n)
        .seed(seed)
        .build()
        .expect("valid scenario")
        .run(ExecPolicy::default())
}

#[test]
fn full_pipeline_recovers_au_population() {
    let mut errors = Vec::new();
    for seed in 0..5 {
        let outcome = run(DgaFamily::murofet(), 64, seed);
        let meter = BotMeter::new(BotMeterConfig::new(outcome.family().clone()));
        let landscape = meter.chart_with(&ChartRequest::new(outcome.observed()));
        errors.push(absolute_relative_error(
            landscape.total_for_epoch(0),
            outcome.ground_truth()[0] as f64,
        ));
    }
    let mean = errors.iter().sum::<f64>() / errors.len() as f64;
    assert!(mean < 0.5, "AU pipeline mean ARE {mean}: {errors:?}");
}

#[test]
fn full_pipeline_recovers_ar_population_via_coverage() {
    let mut errors = Vec::new();
    for seed in 0..5 {
        let outcome = run(DgaFamily::new_goz(), 128, 100 + seed);
        let meter =
            BotMeter::new(BotMeterConfig::new(outcome.family().clone()).model(ModelKind::Coverage));
        let landscape = meter.chart_with(&ChartRequest::new(outcome.observed()));
        errors.push(absolute_relative_error(
            landscape.total_for_epoch(0),
            outcome.ground_truth()[0] as f64,
        ));
    }
    let mean = errors.iter().sum::<f64>() / errors.len() as f64;
    assert!(mean < 0.35, "AR pipeline mean ARE {mean}: {errors:?}");
}

#[test]
fn timing_estimator_works_on_sampling_barrels() {
    // AS (Conficker.C): random barrels dodge the cache, so MT sees almost
    // every bot.
    let outcome = run(DgaFamily::conficker_c(), 32, 7);
    let ctx = EstimationContext::new(
        outcome.family().clone(),
        outcome.ttl(),
        outcome.granularity(),
    );
    let est = TimingEstimator.estimate(outcome.observed(), &ctx);
    let are = absolute_relative_error(est, outcome.ground_truth()[0] as f64);
    assert!(are < 0.4, "MT on AS: ARE {are}");
}

#[test]
fn matcher_strips_foreign_traffic_before_estimation() {
    // Run two families at once; each family's matcher must only pass its
    // own domains through.
    let goz = run(DgaFamily::new_goz(), 32, 3);
    let murofet = run(DgaFamily::murofet(), 32, 3);
    let mut combined = goz.observed().to_vec();
    combined.extend(murofet.observed().iter().cloned());
    combined.sort_by_key(|l| l.t);

    let goz_matcher = ExactMatcher::from_family(goz.family(), 0..2);
    let matched = match_stream(&combined, &goz_matcher, ExecPolicy::default());
    let goz_only = match_stream(goz.observed(), &goz_matcher, ExecPolicy::default());
    assert_eq!(
        matched.total_matched(),
        goz_only.total_matched(),
        "murofet lookups leaked through the newGoZ matcher"
    );
}

#[test]
fn landscape_separates_servers_in_star_topology() {
    use botmeter::dga::DgaFamily;
    use botmeter::dns::{RawLookup, SimInstant, Topology, TtlPolicy};

    // Hand-route two bot populations behind different local resolvers.
    let family = DgaFamily::new_goz();
    let authority = family.authority_for_epochs(1);
    let mut topo = Topology::star(TtlPolicy::paper_default(), 2);
    let servers = topo.local_servers();

    // Re-simulate raw traffic, then route clients by parity.
    let outcome = run(family.clone(), 32, 11);
    for raw in outcome.raw() {
        let leaf = if raw.client.0 % 2 == 0 {
            servers[0]
        } else {
            servers[1]
        };
        topo.assign_client(raw.client, leaf).expect("leaf exists");
    }
    let mut observed = Vec::new();
    for raw in outcome.raw() {
        let r = RawLookup::new(raw.t, raw.client, raw.domain.clone());
        if let Some(obs) = topo.process(&r, &authority).expect("routable") {
            observed.push(obs);
        }
    }
    assert!(observed.iter().any(|o| o.server == servers[0]));
    assert!(observed.iter().any(|o| o.server == servers[1]));

    let meter = BotMeter::new(BotMeterConfig::new(family).model(ModelKind::Coverage));
    let landscape = meter.chart_with(&ChartRequest::new(&observed));
    assert!(landscape.estimate(servers[0], 0) > 0.0);
    assert!(landscape.estimate(servers[1], 0) > 0.0);
    let _ = SimInstant::ZERO;
}

#[test]
fn pipeline_is_deterministic() {
    let a = run(DgaFamily::necurs(), 16, 9);
    let b = run(DgaFamily::necurs(), 16, 9);
    assert_eq!(a.observed(), b.observed());
    let meter = BotMeter::new(BotMeterConfig::new(a.family().clone()));
    assert_eq!(
        meter.chart_with(&ChartRequest::new(a.observed())),
        meter.chart_with(&ChartRequest::new(b.observed()))
    );
}

#[test]
fn poisson_beats_timing_on_uniform_barrel_at_scale() {
    // The paper's central claim for AU, reproduced at N = 256.
    let outcome = run(DgaFamily::murofet(), 256, 21);
    let ctx = EstimationContext::new(
        outcome.family().clone(),
        outcome.ttl(),
        outcome.granularity(),
    );
    let actual = outcome.ground_truth()[0] as f64;
    let matched = match_stream(
        outcome.observed(),
        &ExactMatcher::from_family(outcome.family(), 0..2),
        ExecPolicy::default(),
    );
    let lookups = matched.for_server(ServerId(1));
    let mp = absolute_relative_error(PoissonEstimator::new().estimate(lookups, &ctx), actual);
    let mt = absolute_relative_error(TimingEstimator.estimate(lookups, &ctx), actual);
    assert!(mp < mt, "MP ({mp}) should beat MT ({mt}) at N=256 on AU");
    assert!(mt > 0.5, "MT should collapse on AU at scale, got {mt}");
}
