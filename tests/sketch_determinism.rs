//! The sketch frontend must accumulate **bit-identical** state however the
//! telemetry reaches it: any `ExecPolicy`, any `PipelineMode`, any shard
//! width, any worker count, single-shot or chunked ingest, and pre-sketched
//! worker shards merged in any order. Retention depends only on domain hash
//! ranks, so every route over the same matched stream must land on the same
//! `SketchedTraffic` — byte for byte through its serialized state.
//!
//! Also pins the observability contract: every `sketch.*` metric the
//! frontend emits is deterministic and must surface through
//! [`MetricsSnapshot::deterministic_counters`].

use botmeter::dga::DgaFamily;
use botmeter::exec::ExecPolicy;
use botmeter::matcher::{ExactMatcher, SketchStream};
use botmeter::obs::Obs;
use botmeter::sim::{PipelineMode, ScenarioSpec};
use botmeter::sketch::{SketchConfig, SketchedTraffic};
use botmeter_dns::SimDuration;

const EPOCHS: std::ops::Range<u64> = 0..2;

fn spec(mode: PipelineMode) -> ScenarioSpec {
    ScenarioSpec::builder(DgaFamily::new_goz())
        .population(32)
        .num_epochs(2)
        .seed(19)
        .pipeline(mode)
        .build()
        .expect("valid scenario")
}

fn config(epoch_len: SimDuration) -> SketchConfig {
    SketchConfig::new(epoch_len)
        .and_then(|c| c.width(32))
        .expect("valid sketch config")
}

/// Canonical comparison: the serialized state covers every register,
/// retained entry, counter and timestamp, so equality here is bit-identity.
fn state_json(sketch: &SketchedTraffic) -> String {
    serde_json::to_string(&sketch.to_state()).expect("sketch state serializes")
}

#[test]
fn sketch_accumulation_is_bit_identical_across_policies_modes_and_workers() {
    // Reference: sequential materialized trace, single-shot ingest.
    let reference_outcome = spec(PipelineMode::Materialize).run(ExecPolicy::Sequential);
    let family = reference_outcome.family().clone();
    let matcher = ExactMatcher::from_family(&family, EPOCHS);
    let mut reference_frontend =
        SketchStream::new(&matcher, config(family.epoch_len()), Obs::noop());
    reference_frontend.ingest(reference_outcome.observed());
    let (reference, reference_quality) = reference_frontend.finish();
    assert!(
        reference.total() > 0,
        "scenario produced no matched traffic"
    );
    let reference_state = state_json(&reference);

    let policies = [
        ExecPolicy::Sequential,
        ExecPolicy::with_threads(2),
        ExecPolicy::with_threads(8),
    ];
    let modes = [
        PipelineMode::Materialize,
        PipelineMode::Streaming { shard: None },
        PipelineMode::Streaming {
            shard: Some(SimDuration::from_secs(600)),
        },
    ];
    for policy in policies {
        for mode in modes {
            let mut frontend = SketchStream::new(&matcher, config(family.epoch_len()), Obs::noop());
            match mode {
                PipelineMode::Materialize => {
                    let outcome = spec(mode).run(policy);
                    frontend.ingest(outcome.observed());
                }
                _ => {
                    spec(mode).run_streaming_each(policy, |chunk| frontend.ingest(chunk));
                }
            }
            let (sketch, quality) = frontend.finish();
            assert_eq!(
                state_json(&sketch),
                reference_state,
                "sketch state diverged ({policy:?}, {mode:?})"
            );
            assert_eq!(
                quality, reference_quality,
                "stream quality diverged ({policy:?}, {mode:?})"
            );
        }
    }
}

#[test]
fn worker_shard_sketches_merge_to_the_same_state_in_any_order() {
    let outcome = spec(PipelineMode::Materialize).run(ExecPolicy::Sequential);
    let family = outcome.family().clone();
    let matcher = ExactMatcher::from_family(&family, EPOCHS);
    let mut reference_frontend =
        SketchStream::new(&matcher, config(family.epoch_len()), Obs::noop());
    reference_frontend.ingest(outcome.observed());
    let (reference, _) = reference_frontend.finish();
    let reference_state = state_json(&reference);

    // Split the stream into uneven worker shards, sketch each independently.
    let observed = outcome.observed();
    let cuts = [0, observed.len() / 5, observed.len() / 2, observed.len()];
    let shard_sketches: Vec<SketchedTraffic> = cuts
        .windows(2)
        .map(|w| {
            let mut worker = SketchStream::new(&matcher, config(family.epoch_len()), Obs::noop());
            worker.ingest(&observed[w[0]..w[1]]);
            worker.finish().0
        })
        .collect();

    // Absorb the worker shards forwards and backwards — merge order and
    // arrival order must not matter.
    for order in [[0usize, 1, 2], [2, 1, 0], [1, 2, 0]] {
        let mut merged = SketchStream::new(&matcher, config(family.epoch_len()), Obs::noop());
        for &i in &order {
            merged.absorb_sketch(&shard_sketches[i]);
        }
        let (sketch, _) = merged.finish();
        assert_eq!(
            state_json(&sketch),
            reference_state,
            "merged sketch diverged for absorb order {order:?}"
        );
    }
}

#[test]
fn sketch_metrics_surface_through_deterministic_counters() {
    let outcome = spec(PipelineMode::Materialize).run(ExecPolicy::Sequential);
    let family = outcome.family().clone();
    let matcher = ExactMatcher::from_family(&family, EPOCHS);

    // Pre-sketch half the stream so `sketch.merges` is exercised too.
    let observed = outcome.observed();
    let mid = observed.len() / 2;
    let mut worker = SketchStream::new(&matcher, config(family.epoch_len()), Obs::noop());
    worker.ingest(&observed[mid..]);
    let (worker_sketch, _) = worker.finish();

    let (obs, registry) = Obs::collecting();
    let mut frontend = SketchStream::new(&matcher, config(family.epoch_len()), obs);
    frontend.ingest(&observed[..mid]);
    frontend.absorb_sketch(&worker_sketch);
    let (sketch, _) = frontend.finish();

    let det = registry.snapshot().deterministic_counters();
    let value = |name: &str| {
        det.iter()
            .find(|c| c.name == name)
            .unwrap_or_else(|| panic!("{name} missing from deterministic_counters"))
            .value
    };
    assert_eq!(value("sketch.ingest"), sketch.total());
    assert_eq!(value("sketch.merges"), 1);
    assert_eq!(value("sketch.cells"), sketch.cell_count() as u64);
    assert!(
        value("sketch.hh_evictions") > 0,
        "width 32 over a newGoZ stream must evict"
    );
    assert_eq!(
        value("sketch.peak_resident_bytes"),
        sketch.peak_resident_bytes(),
        "resident-bytes gauge must report the accumulated sketch's peak"
    );
}
