//! End-to-end pipeline over the dictionary DGA (Suppobox) and the
//! plain-list feed format — exercising the analyst workflow the paper's
//! Fig. 2 describes with real exported domain lists.

use botmeter::core::{absolute_relative_error, EstimationContext, Estimator, PoissonEstimator};
use botmeter::dga::{DgaFamily, NameStyle};
use botmeter::dns::ServerId;
use botmeter::exec::ExecPolicy;
use botmeter::matcher::{match_stream, DomainMatcher, ExactMatcher, PatternMatcher};
use botmeter::sim::ScenarioSpec;

#[test]
fn suppobox_is_a_dictionary_family() {
    let f = DgaFamily::suppobox();
    match f.generator().style() {
        NameStyle::Dictionary { words_per_name, .. } => assert_eq!(*words_per_name, 2),
        other => panic!("expected a dictionary style, got {other:?}"),
    }
    // Lexically benign: pure letters, word-like lengths.
    for d in f.pool_for_epoch(0).iter().take(20) {
        assert!(d.first_label().chars().all(|c| c.is_ascii_lowercase()));
        assert!(d.first_label().len() >= 10);
    }
}

#[test]
fn plain_list_feed_drives_the_full_pipeline() {
    // Simulate a Suppobox infection...
    let outcome = ScenarioSpec::builder(DgaFamily::suppobox())
        .population(32)
        .seed(11)
        .build()
        .expect("valid scenario")
        .run(ExecPolicy::default());

    // ...export the day's pool as a DGArchive-style plain list, re-import
    // it, and run the estimation pipeline off the imported feed.
    let exported = ExactMatcher::from_family(outcome.family(), 0..2);
    let mut feed = Vec::new();
    exported.write_plain_list(&mut feed).expect("export");
    let imported = ExactMatcher::from_plain_list(feed.as_slice()).expect("import");

    let matched = match_stream(outcome.observed(), &imported, ExecPolicy::default());
    assert!(matched.total_matched() > 0, "feed matched nothing");
    let lookups = matched.for_server(ServerId(1));

    // Suppobox is AU: the Poisson estimator applies.
    let ctx = EstimationContext::new(
        outcome.family().clone(),
        outcome.ttl(),
        outcome.granularity(),
    );
    let est = PoissonEstimator::new().estimate(lookups, &ctx);
    let are = absolute_relative_error(est, outcome.ground_truth()[0] as f64);
    assert!(are < 0.7, "ARE {are} on dictionary-DGA pipeline");
}

#[test]
fn pattern_matcher_covers_dictionary_names_but_is_coarse() {
    let f = DgaFamily::suppobox();
    let pattern = PatternMatcher::for_family(&f);
    // Total recall over the family's own pools...
    for epoch in 0..3 {
        for d in f.pool_for_epoch(epoch) {
            assert!(pattern.matches(&d), "{d} missed");
        }
    }
    // ...but any letter-only label of matching length also passes — the
    // documented weakness of lexical patterns on dictionary DGAs, which is
    // why they evade entropy detectors in the first place.
    assert!(pattern.matches(&"ratherordinary.net".parse().unwrap()));
}

#[test]
fn dictionary_pools_may_share_domains_across_epochs() {
    // Unlike the gibberish families, word-pair pools drawn from a finite
    // dictionary can re-use names on different days (as real dictionary
    // DGAs do). The matcher-over-epochs union handles this shape.
    let f = DgaFamily::suppobox();
    let union = ExactMatcher::from_family(&f, 0..30);
    let total_with_dupes: usize = (0..30).map(|e| f.pool_for_epoch(e).len()).sum();
    assert!(
        union.len() <= total_with_dupes,
        "union cannot exceed the concatenation"
    );
    // Every day's pool is still internally distinct.
    for epoch in 0..30 {
        let pool = f.pool_for_epoch(epoch);
        let set: std::collections::HashSet<_> = pool.iter().collect();
        assert_eq!(set.len(), pool.len(), "epoch {epoch} has duplicates");
    }
}
