//! Property-based tests over the estimator library's invariants.

use botmeter::core::{
    absolute_relative_error, extract_segments, BernoulliEstimator, CoverageEstimator,
    EstimationContext, Estimator, PoissonEstimator, Segment, SegmentKind, TimingEstimator,
};
use botmeter::dga::{BarrelClass, DgaFamily, DgaParams, QueryTiming};
use botmeter::dns::{DomainName, ObservedLookup, ServerId, SimDuration, SimInstant, TtlPolicy};
use botmeter::exec::ExecPolicy;
use botmeter::stats::SharedStirling;
use proptest::prelude::*;

fn test_family(theta_nx: usize, theta_valid: usize, theta_q: usize) -> DgaFamily {
    DgaFamily::builder(
        "prop-test",
        DgaParams::new(
            theta_nx,
            theta_valid,
            theta_q,
            QueryTiming::Fixed(SimDuration::from_secs(1)),
        )
        .expect("valid params"),
    )
    .barrel(BarrelClass::RandomCut)
    .build()
    .expect("consistent family")
}

fn ctx(family: DgaFamily) -> EstimationContext {
    EstimationContext::new(family, TtlPolicy::paper_default(), SimDuration::ZERO)
}

/// Builds a lookup stream from (millis, domain-index) pairs over a pool.
fn lookups_from(family: &DgaFamily, pairs: &[(u64, usize)]) -> Vec<ObservedLookup> {
    let pool = family.pool_for_epoch(0);
    pairs
        .iter()
        .map(|&(ms, idx)| {
            ObservedLookup::new(
                SimInstant::from_millis(ms),
                ServerId(1),
                pool[idx % pool.len()].clone(),
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// MT never reports more bots than lookups, and at least one for a
    /// non-empty stream.
    #[test]
    fn timing_estimate_bounds(pairs in prop::collection::vec((0u64..86_400_000, 0usize..500), 1..120)) {
        let family = test_family(499, 1, 100);
        let mut sorted = pairs.clone();
        sorted.sort();
        let lookups = lookups_from(&family, &sorted);
        let est = TimingEstimator.estimate(&lookups, &ctx(family));
        prop_assert!(est >= 1.0);
        prop_assert!(est <= lookups.len() as f64);
    }

    /// MP is at least the number of visible activations and finite.
    #[test]
    fn poisson_estimate_sane(pairs in prop::collection::vec((0u64..86_400_000, 0usize..500), 1..120)) {
        let family = test_family(499, 1, 100);
        let mut sorted = pairs.clone();
        sorted.sort();
        let lookups = lookups_from(&family, &sorted);
        let est = PoissonEstimator::new().estimate(&lookups, &ctx(family));
        prop_assert!(est.is_finite());
        prop_assert!(est >= 1.0);
    }

    /// Segment extraction is a partition: lengths sum to the number of
    /// distinct positions, segments never overlap a valid index, and all
    /// runs are maximal.
    #[test]
    fn segments_partition_positions(
        positions in prop::collection::btree_set(0usize..400, 1..120),
        valid in prop::collection::btree_set(400usize..410, 1..5),
    ) {
        let nxd: Vec<usize> = positions.iter().copied().collect();
        let val: Vec<usize> = valid.iter().copied().collect();
        let segments = extract_segments(&nxd, &val, 410);
        let total: usize = segments.iter().map(|s| s.len).sum();
        prop_assert_eq!(total, positions.len());
        // Each segment's covered range is entirely inside the NXD set.
        for seg in &segments {
            for k in 0..seg.len {
                let p = (seg.start + k) % 410;
                prop_assert!(positions.contains(&p), "segment covers non-queried {p}");
            }
            // Maximality: the positions right before and after are not NXDs.
            let before = (seg.start + 410 - 1) % 410;
            let after = (seg.start + seg.len) % 410;
            prop_assert!(!positions.contains(&before));
            prop_assert!(!positions.contains(&after));
        }
    }

    /// ARE is scale-invariant: scaling estimate and actual together leaves
    /// it unchanged.
    #[test]
    fn are_scale_invariance(est in 0.0f64..1e6, actual in 1e-3f64..1e6, scale in 1e-3f64..1e3) {
        let a = absolute_relative_error(est, actual);
        let b = absolute_relative_error(est * scale, actual * scale);
        prop_assert!((a - b).abs() < 1e-9 * (1.0 + a));
    }

    /// The Theorem 1 segment expectation is monotone in segment length for
    /// m-segments and always at least ~1.
    #[test]
    fn theorem1_monotone_in_length(extra in 0usize..60, theta_q in 20usize..60) {
        let tables = SharedStirling::new();
        let base = Segment { start: 0, len: theta_q, kind: SegmentKind::Middle };
        let longer = Segment { start: 0, len: theta_q + extra, kind: SegmentKind::Middle };
        let e1 = botmeter::core::expected_bots_for_segment(&base, theta_q, 1e-3, &tables);
        let e2 = botmeter::core::expected_bots_for_segment(&longer, theta_q, 1e-3, &tables);
        prop_assert!(e1 >= 0.99, "{e1}");
        prop_assert!(e2 >= e1 - 1e-6, "len {} -> {e1}, len {} -> {e2}",
                     base.len, longer.len);
    }

    /// The Bernoulli estimator is permutation-invariant over the lookup
    /// stream (it only reads the distinct-NXD set).
    #[test]
    fn bernoulli_order_invariant(seed in 0u64..20) {
        use botmeter::sim::ScenarioSpec;
        let outcome = ScenarioSpec::builder(DgaFamily::new_goz())
            .population(8)
            .seed(seed)
            .build()
            .expect("valid")
            .run(ExecPolicy::default());
        let c = EstimationContext::new(
            outcome.family().clone(), outcome.ttl(), outcome.granularity());
        let forward = BernoulliEstimator::default().estimate(outcome.observed(), &c);
        let mut reversed = outcome.observed().to_vec();
        reversed.reverse();
        // Keep one element at the front from the same epoch (epoch is read
        // from the first lookup; reversal preserves the epoch here because
        // the scenario spans one epoch).
        let backward = BernoulliEstimator::default().estimate(&reversed, &c);
        prop_assert!((forward - backward).abs() < 1e-9);
    }

    /// The Coverage estimator is monotone in the volume of observed
    /// lookups: truncating the stream cannot raise the estimate.
    #[test]
    fn coverage_monotone_in_volume(seed in 0u64..12, keep in 0.2f64..1.0) {
        use botmeter::sim::ScenarioSpec;
        let outcome = ScenarioSpec::builder(DgaFamily::new_goz())
            .population(32)
            .seed(seed)
            .build()
            .expect("valid")
            .run(ExecPolicy::default());
        let c = EstimationContext::new(
            outcome.family().clone(), outcome.ttl(), outcome.granularity());
        let full = CoverageEstimator.estimate(outcome.observed(), &c);
        let cut = (outcome.observed().len() as f64 * keep) as usize;
        let truncated = &outcome.observed()[..cut.max(1)];
        let partial = CoverageEstimator.estimate(truncated, &c);
        prop_assert!(partial <= full + 1e-6,
                     "truncated stream gave higher estimate: {partial} > {full}");
    }
}

#[test]
fn timing_estimator_is_exact_on_disjoint_trains() {
    // k bots with non-overlapping activation windows and distinct domains.
    let family = test_family(499, 1, 10);
    let pool_len = 500;
    let mut lookups = Vec::new();
    for bot in 0..7u64 {
        let start = bot * 3_600_000; // one per hour; far apart
        for k in 0..5u64 {
            lookups.push((start + k * 1000, (bot * 50 + k) as usize % pool_len));
        }
    }
    let lookups = lookups_from(&family, &lookups);
    let est = TimingEstimator.estimate(&lookups, &ctx(family));
    assert_eq!(est, 7.0);
}

#[test]
fn domain_name_roundtrip_through_stream() {
    // DomainName parsing/serialisation is stable through a whole pipeline.
    let family = DgaFamily::qakbot();
    for d in family.pool_for_epoch(0).iter().take(50) {
        let s = d.to_string();
        let back: DomainName = s.parse().expect("roundtrip");
        assert_eq!(*d, back);
    }
}
