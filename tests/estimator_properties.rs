//! Property-based tests over the estimator library's invariants.

use botmeter::core::{
    absolute_relative_error, extract_segments, BernoulliEstimator, CoverageEstimator,
    EstimationContext, Estimator, PoissonEstimator, RhoQuantization, Segment, SegmentKernelCache,
    SegmentKind, TimingEstimator,
};
use botmeter::dga::{BarrelClass, DgaFamily, DgaParams, QueryTiming};
use botmeter::dns::{DomainName, ObservedLookup, ServerId, SimDuration, SimInstant, TtlPolicy};
use botmeter::exec::ExecPolicy;
use botmeter::stats::SharedStirling;
use proptest::prelude::*;

fn test_family(theta_nx: usize, theta_valid: usize, theta_q: usize) -> DgaFamily {
    DgaFamily::builder(
        "prop-test",
        DgaParams::new(
            theta_nx,
            theta_valid,
            theta_q,
            QueryTiming::Fixed(SimDuration::from_secs(1)),
        )
        .expect("valid params"),
    )
    .barrel(BarrelClass::RandomCut)
    .build()
    .expect("consistent family")
}

fn ctx(family: DgaFamily) -> EstimationContext {
    EstimationContext::new(family, TtlPolicy::paper_default(), SimDuration::ZERO)
}

/// Builds a lookup stream from (millis, domain-index) pairs over a pool.
fn lookups_from(family: &DgaFamily, pairs: &[(u64, usize)]) -> Vec<ObservedLookup> {
    let pool = family.pool_for_epoch(0);
    pairs
        .iter()
        .map(|&(ms, idx)| {
            ObservedLookup::new(
                SimInstant::from_millis(ms),
                ServerId(1),
                pool[idx % pool.len()].clone(),
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// MT never reports more bots than lookups, and at least one for a
    /// non-empty stream.
    #[test]
    fn timing_estimate_bounds(pairs in prop::collection::vec((0u64..86_400_000, 0usize..500), 1..120)) {
        let family = test_family(499, 1, 100);
        let mut sorted = pairs.clone();
        sorted.sort();
        let lookups = lookups_from(&family, &sorted);
        let est = TimingEstimator.estimate(&lookups, &ctx(family));
        prop_assert!(est >= 1.0);
        prop_assert!(est <= lookups.len() as f64);
    }

    /// MP is at least the number of visible activations and finite.
    #[test]
    fn poisson_estimate_sane(pairs in prop::collection::vec((0u64..86_400_000, 0usize..500), 1..120)) {
        let family = test_family(499, 1, 100);
        let mut sorted = pairs.clone();
        sorted.sort();
        let lookups = lookups_from(&family, &sorted);
        let est = PoissonEstimator::new().estimate(&lookups, &ctx(family));
        prop_assert!(est.is_finite());
        prop_assert!(est >= 1.0);
    }

    /// Segment extraction is a partition: lengths sum to the number of
    /// distinct positions, segments never overlap a valid index, and all
    /// runs are maximal.
    #[test]
    fn segments_partition_positions(
        positions in prop::collection::btree_set(0usize..400, 1..120),
        valid in prop::collection::btree_set(400usize..410, 1..5),
    ) {
        let nxd: Vec<usize> = positions.iter().copied().collect();
        let val: Vec<usize> = valid.iter().copied().collect();
        let segments = extract_segments(&nxd, &val, 410);
        let total: usize = segments.iter().map(|s| s.len).sum();
        prop_assert_eq!(total, positions.len());
        // Each segment's covered range is entirely inside the NXD set.
        for seg in &segments {
            for k in 0..seg.len {
                let p = (seg.start + k) % 410;
                prop_assert!(positions.contains(&p), "segment covers non-queried {p}");
            }
            // Maximality: the positions right before and after are not NXDs.
            let before = (seg.start + 410 - 1) % 410;
            let after = (seg.start + seg.len) % 410;
            prop_assert!(!positions.contains(&before));
            prop_assert!(!positions.contains(&after));
        }
    }

    /// ARE is scale-invariant: scaling estimate and actual together leaves
    /// it unchanged.
    #[test]
    fn are_scale_invariance(est in 0.0f64..1e6, actual in 1e-3f64..1e6, scale in 1e-3f64..1e3) {
        let a = absolute_relative_error(est, actual);
        let b = absolute_relative_error(est * scale, actual * scale);
        prop_assert!((a - b).abs() < 1e-9 * (1.0 + a));
    }

    /// The Theorem 1 segment expectation is monotone in segment length for
    /// m-segments and always at least ~1.
    #[test]
    fn theorem1_monotone_in_length(extra in 0usize..60, theta_q in 20usize..60) {
        let tables = SharedStirling::new();
        let base = Segment { start: 0, len: theta_q, kind: SegmentKind::Middle };
        let longer = Segment { start: 0, len: theta_q + extra, kind: SegmentKind::Middle };
        let e1 = botmeter::core::expected_bots_for_segment(&base, theta_q, 1e-3, &tables);
        let e2 = botmeter::core::expected_bots_for_segment(&longer, theta_q, 1e-3, &tables);
        prop_assert!(e1 >= 0.99, "{e1}");
        prop_assert!(e2 >= e1 - 1e-6, "len {} -> {e1}, len {} -> {e2}",
                     base.len, longer.len);
    }

    /// The Bernoulli estimator is permutation-invariant over the lookup
    /// stream (it only reads the distinct-NXD set).
    #[test]
    fn bernoulli_order_invariant(seed in 0u64..20) {
        use botmeter::sim::ScenarioSpec;
        let outcome = ScenarioSpec::builder(DgaFamily::new_goz())
            .population(8)
            .seed(seed)
            .build()
            .expect("valid")
            .run(ExecPolicy::default());
        let c = EstimationContext::new(
            outcome.family().clone(), outcome.ttl(), outcome.granularity());
        let forward = BernoulliEstimator::default().estimate(outcome.observed(), &c);
        let mut reversed = outcome.observed().to_vec();
        reversed.reverse();
        // Keep one element at the front from the same epoch (epoch is read
        // from the first lookup; reversal preserves the epoch here because
        // the scenario spans one epoch).
        let backward = BernoulliEstimator::default().estimate(&reversed, &c);
        prop_assert!((forward - backward).abs() < 1e-9);
    }

    /// The exact-mode kernel cache is a transparent memo: its value is
    /// bit-identical to the uncached Theorem-1 evaluation at the same ρ,
    /// and replaying the query is a hit returning the same bits.
    #[test]
    fn kernel_cache_exact_matches_uncached(
        len in 2usize..3000,
        theta_q in 20usize..600,
        rho_mantissa in 1.0f64..10.0,
        rho_neg_exp in 1u32..6,
        boundary in any::<bool>(),
    ) {
        let rho = rho_mantissa * 10f64.powi(-(rho_neg_exp as i32));
        let kind = if boundary { SegmentKind::Boundary } else { SegmentKind::Middle };
        let seg = Segment { start: 0, len, kind };
        let tables = SharedStirling::new();
        let uncached = botmeter::core::expected_bots_for_segment(&seg, theta_q, rho, &tables);

        let cache = SegmentKernelCache::exact();
        let first = cache.expected_bots(&seg, theta_q, rho, &tables);
        prop_assert!(!first.memo_hit);
        prop_assert_eq!(first.value.to_bits(), uncached.to_bits(),
                        "exact cache diverged from uncached kernel: {} vs {uncached}",
                        first.value);
        let replay = cache.expected_bots(&seg, theta_q, rho, &tables);
        prop_assert!(replay.memo_hit, "identical query must hit the memo table");
        prop_assert_eq!(replay.value.to_bits(), uncached.to_bits());
    }

    /// The quantized cache evaluates at the snapped density: its value is
    /// bit-identical to the uncached kernel at `snap_rho(ρ)` (so the hit
    /// value is never an approximation of the key it is stored under —
    /// trivially within 1e-9 relative of the kernel at the cache's ρ), and
    /// any ρ in the same grid bucket replays as a hit.
    #[test]
    fn kernel_cache_quantized_matches_uncached_at_snapped_rho(
        len in 2usize..3000,
        theta_q in 20usize..600,
        rho_mantissa in 1.0f64..10.0,
        rho_neg_exp in 1u32..6,
        boundary in any::<bool>(),
    ) {
        let rho = rho_mantissa * 10f64.powi(-(rho_neg_exp as i32));
        let kind = if boundary { SegmentKind::Boundary } else { SegmentKind::Middle };
        let seg = Segment { start: 0, len, kind };
        let tables = SharedStirling::new();

        let cache = SegmentKernelCache::default();
        prop_assert!(matches!(cache.quantization(), RhoQuantization::Relative { .. }));
        let snapped = cache.snap_rho(rho);
        let relative_shift = (snapped - rho).abs() / rho;
        prop_assert!(relative_shift < 1e-5, "snap moved ρ by {relative_shift}");
        let uncached = botmeter::core::expected_bots_for_segment(&seg, theta_q, snapped, &tables);

        let first = cache.expected_bots(&seg, theta_q, rho, &tables);
        prop_assert!(!first.memo_hit);
        prop_assert_eq!(first.value.to_bits(), uncached.to_bits(),
                        "quantized cache diverged from uncached kernel at snapped ρ");
        prop_assert!(absolute_relative_error(first.value, uncached.max(1e-300)) < 1e-9);
        // Any density that snaps to the same bucket must hit with the
        // identical stored value.
        let nearby = snapped * (1.0 + 1e-8);
        if cache.snap_rho(nearby) == snapped {
            let replay = cache.expected_bots(&seg, theta_q, nearby, &tables);
            prop_assert!(replay.memo_hit);
            prop_assert_eq!(replay.value.to_bits(), uncached.to_bits());
        }
    }

    /// The Coverage estimator is monotone in the volume of observed
    /// lookups: truncating the stream cannot raise the estimate.
    #[test]
    fn coverage_monotone_in_volume(seed in 0u64..12, keep in 0.2f64..1.0) {
        use botmeter::sim::ScenarioSpec;
        let outcome = ScenarioSpec::builder(DgaFamily::new_goz())
            .population(32)
            .seed(seed)
            .build()
            .expect("valid")
            .run(ExecPolicy::default());
        let c = EstimationContext::new(
            outcome.family().clone(), outcome.ttl(), outcome.granularity());
        let full = CoverageEstimator.estimate(outcome.observed(), &c);
        let cut = (outcome.observed().len() as f64 * keep) as usize;
        let truncated = &outcome.observed()[..cut.max(1)];
        let partial = CoverageEstimator.estimate(truncated, &c);
        prop_assert!(partial <= full + 1e-6,
                     "truncated stream gave higher estimate: {partial} > {full}");
    }
}

/// Per-segment parallel charting is bit-identical to sequential charting,
/// and the observed trace it charts is the same whether the pipeline
/// materialized or streamed: all four `ExecPolicy` × `PipelineMode`
/// combinations produce the same landscape bits and the same
/// deterministic estimator counters (memo hits/misses, scheduled
/// segments, cell counts).
#[test]
fn charting_is_bit_identical_across_policies_and_pipeline_modes() {
    use botmeter::core::{BotMeter, BotMeterConfig, ChartRequest};
    use botmeter::obs::Obs;
    use botmeter::sim::{PipelineMode, ScenarioSpec};

    // Pin the worker count so the parallel paths actually run on
    // single-core machines.
    std::env::set_var("BOTMETER_THREADS", "4");
    let run = |mode| {
        ScenarioSpec::builder(DgaFamily::new_goz())
            .population(64)
            .num_epochs(2)
            .seed(13)
            .pipeline(mode)
            .build()
            .expect("valid scenario")
            .run(ExecPolicy::parallel())
    };
    let materialized = run(PipelineMode::Materialize);
    let streamed = run(PipelineMode::Streaming { shard: None });
    assert_eq!(
        materialized.observed(),
        streamed.observed(),
        "pipeline modes disagree on the observed trace"
    );

    let mut landscapes = Vec::new();
    let mut counters = Vec::new();
    for (mode, outcome) in [("materialize", &materialized), ("streaming", &streamed)] {
        for policy in [ExecPolicy::Sequential, ExecPolicy::parallel()] {
            let (obs, registry) = Obs::collecting();
            let meter = BotMeter::new(BotMeterConfig::new(outcome.family().clone())).with_obs(obs);
            landscapes.push((
                mode,
                policy,
                meter.chart_with(
                    &ChartRequest::new(outcome.observed())
                        .epochs(0..2)
                        .policy(policy),
                ),
            ));
            counters.push(registry.snapshot().deterministic_counters());
        }
    }
    let (_, _, reference) = &landscapes[0];
    for (mode, policy, landscape) in &landscapes[1..] {
        assert_eq!(
            landscape, reference,
            "landscape diverged for {mode} / {policy:?}"
        );
    }
    for (i, observed_counters) in counters.iter().enumerate().skip(1) {
        assert_eq!(
            observed_counters, &counters[0],
            "deterministic counters diverged for variant {i}"
        );
    }
}

#[test]
fn timing_estimator_is_exact_on_disjoint_trains() {
    // k bots with non-overlapping activation windows and distinct domains.
    let family = test_family(499, 1, 10);
    let pool_len = 500;
    let mut lookups = Vec::new();
    for bot in 0..7u64 {
        let start = bot * 3_600_000; // one per hour; far apart
        for k in 0..5u64 {
            lookups.push((start + k * 1000, (bot * 50 + k) as usize % pool_len));
        }
    }
    let lookups = lookups_from(&family, &lookups);
    let est = TimingEstimator.estimate(&lookups, &ctx(family));
    assert_eq!(est, 7.0);
}

#[test]
fn domain_name_roundtrip_through_stream() {
    // DomainName parsing/serialisation is stable through a whole pipeline.
    let family = DgaFamily::qakbot();
    for d in family.pool_for_epoch(0).iter().take(50) {
        let s = d.to_string();
        let back: DomainName = s.parse().expect("roundtrip");
        assert_eq!(*d, back);
    }
}
