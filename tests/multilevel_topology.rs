//! Multi-level hierarchy integration: the paper's Fig. 1 setting with
//! several caching levels between clients and the vantage point.

use botmeter::core::{BotMeter, BotMeterConfig, ChartRequest, ModelKind};
use botmeter::dga::DgaFamily;
use botmeter::dns::{ClientId, ObservedLookup, RawLookup, ServerId, TopologyBuilder, TtlPolicy};
use botmeter::exec::ExecPolicy;
use botmeter::sim::ScenarioSpec;

/// Routes a simulated raw trace through a two-level tree: two sites under
/// the border, two floors under each site. Returns the border-visible
/// stream and the site each client was assigned to.
fn route_through_tree(
    outcome: &botmeter::sim::ScenarioOutcome,
) -> (Vec<ObservedLookup>, ServerId, ServerId) {
    let mut b = TopologyBuilder::new(TtlPolicy::paper_default());
    let site_a = b.add_resolver_under_border();
    let site_b = b.add_resolver_under_border();
    let floor_a1 = b.add_resolver(site_a).expect("site exists");
    let floor_a2 = b.add_resolver(site_a).expect("site exists");
    let floor_b1 = b.add_resolver(site_b).expect("site exists");
    let mut topo = b.build();

    let authority = outcome.family().authority_for_epochs(2);
    let mut observed = Vec::new();
    for raw in outcome.raw() {
        let floor = match raw.client.0 % 3 {
            0 => floor_a1,
            1 => floor_a2,
            _ => floor_b1,
        };
        topo.assign_client(raw.client, floor).expect("floor exists");
        let r = RawLookup::new(raw.t, raw.client, raw.domain.clone());
        if let Some(obs) = topo.process(&r, &authority).expect("routable") {
            observed.push(obs);
        }
    }
    (observed, site_a, site_b)
}

#[test]
fn border_attributes_lookups_to_sites_not_floors() {
    let outcome = ScenarioSpec::builder(DgaFamily::new_goz())
        .population(48)
        .seed(13)
        .build()
        .expect("valid scenario")
        .run(ExecPolicy::default());
    let (observed, site_a, site_b) = route_through_tree(&outcome);
    assert!(!observed.is_empty());
    // Everything the border sees is attributed to a *site* (its direct
    // children), never to the floors two levels down.
    for o in &observed {
        assert!(
            o.server == site_a || o.server == site_b,
            "leaked floor id {}",
            o.server
        );
    }
    assert!(observed.iter().any(|o| o.server == site_a));
    assert!(observed.iter().any(|o| o.server == site_b));
}

#[test]
fn intermediate_caches_absorb_cross_floor_duplicates() {
    // The same domain queried from two floors of one site must reach the
    // border at most once per TTL window: the site cache absorbs the
    // second floor's miss.
    let outcome = ScenarioSpec::builder(DgaFamily::murofet())
        .population(32)
        .seed(14)
        .build()
        .expect("valid scenario")
        .run(ExecPolicy::default());
    let (tree_observed, _, _) = route_through_tree(&outcome);

    // Against the flat single-local baseline on the same raw trace, each
    // of the two *sites* dedupes independently, so the border can see each
    // domain at most once per site per TTL window: tree visibility is
    // bounded by 2× flat. (Floors alone would give 3×; the site-level
    // caches are what keep it at 2×.)
    assert!(
        tree_observed.len() <= 2 * outcome.observed().len(),
        "tree visibility {} exceeds sites × flat bound ({})",
        tree_observed.len(),
        2 * outcome.observed().len()
    );
    // And the site caches genuinely absorb something: visibility stays
    // strictly below the no-shared-cache worst case of one forward per
    // floor per window.
    assert!(
        tree_observed.len() > outcome.observed().len(),
        "two independent sites should leak more than one shared cache"
    );
}

#[test]
fn landscape_ranks_the_heavier_site_first() {
    let outcome = ScenarioSpec::builder(DgaFamily::new_goz())
        .population(60)
        .seed(15)
        .build()
        .expect("valid scenario")
        .run(ExecPolicy::default());
    let (observed, site_a, site_b) = route_through_tree(&outcome);

    // Two of three floors (≈ 2/3 of bots) hang under site A.
    let meter =
        BotMeter::new(BotMeterConfig::new(outcome.family().clone()).model(ModelKind::Coverage));
    let landscape = meter.chart_with(&ChartRequest::new(&observed));
    let a = landscape.estimate(site_a, 0);
    let b = landscape.estimate(site_b, 0);
    assert!(a > 0.0 && b > 0.0);
    assert!(
        a > b,
        "site A (2 floors, est {a}) should outrank site B (1 floor, est {b})"
    );
    let ranked = landscape.ranked_servers();
    assert_eq!(ranked[0].0, site_a);
    // The totals should land near the simulated population.
    let total = a + b;
    let actual = outcome.ground_truth()[0] as f64;
    assert!(
        (total - actual).abs() / actual < 0.6,
        "summed landscape {total} vs actual {actual}"
    );
    let _ = ClientId(0);
}
