//! Invariants of the caching-and-forwarding substrate, checked end-to-end
//! on simulated traffic.

use botmeter::dga::DgaFamily;
use botmeter::dns::{SimDuration, TtlPolicy};
use botmeter::exec::ExecPolicy;
use botmeter::sim::ScenarioSpec;
use std::collections::{HashMap, HashSet};

fn outcome(family: DgaFamily, ttl: TtlPolicy, seed: u64) -> botmeter::sim::ScenarioOutcome {
    ScenarioSpec::builder(family)
        .population(32)
        .ttl(ttl)
        .seed(seed)
        .build()
        .expect("valid scenario")
        .run(ExecPolicy::default())
}

#[test]
fn observed_domains_are_subset_of_raw() {
    let o = outcome(DgaFamily::new_goz(), TtlPolicy::paper_default(), 1);
    let raw_domains: HashSet<_> = o.raw().iter().map(|l| l.domain.clone()).collect();
    for obs in o.observed() {
        assert!(
            raw_domains.contains(&obs.domain),
            "observed a domain never queried: {}",
            obs.domain
        );
    }
}

#[test]
fn per_domain_observed_counts_never_exceed_raw() {
    let o = outcome(DgaFamily::conficker_c(), TtlPolicy::paper_default(), 2);
    let mut raw_counts: HashMap<&str, usize> = HashMap::new();
    for l in o.raw() {
        *raw_counts.entry(l.domain.as_str()).or_insert(0) += 1;
    }
    let mut obs_counts: HashMap<&str, usize> = HashMap::new();
    for l in o.observed() {
        *obs_counts.entry(l.domain.as_str()).or_insert(0) += 1;
    }
    for (domain, &obs) in &obs_counts {
        assert!(
            obs <= raw_counts[domain],
            "{domain}: observed {obs} > raw {}",
            raw_counts[domain]
        );
    }
}

#[test]
fn first_sighting_of_every_domain_is_never_masked() {
    // The cache can only absorb a lookup if an earlier one populated it.
    let o = outcome(DgaFamily::new_goz(), TtlPolicy::paper_default(), 3);
    let mut first_raw: HashMap<&str, u64> = HashMap::new();
    for l in o.raw() {
        first_raw
            .entry(l.domain.as_str())
            .or_insert(l.t.as_millis());
    }
    let mut seen_observed: HashSet<&str> = HashSet::new();
    for l in o.observed() {
        seen_observed.insert(l.domain.as_str());
    }
    for (domain, _) in first_raw {
        assert!(
            seen_observed.contains(domain),
            "{domain} was queried but never reached the border"
        );
    }
}

#[test]
fn longer_negative_ttl_masks_more() {
    let family = DgaFamily::murofet();
    let short = outcome(
        family.clone(),
        TtlPolicy::paper_default().with_negative(SimDuration::from_mins(20)),
        4,
    );
    let long = outcome(
        family,
        TtlPolicy::paper_default().with_negative(SimDuration::from_mins(320)),
        4,
    );
    // Same seed → identical raw traffic; only the cache differs.
    assert_eq!(short.raw().len(), long.raw().len());
    assert!(
        long.observed().len() < short.observed().len(),
        "5x negative TTL must absorb more: {} vs {}",
        long.observed().len(),
        short.observed().len()
    );
}

#[test]
fn observed_stream_is_time_ordered() {
    let o = outcome(DgaFamily::necurs(), TtlPolicy::paper_default(), 5);
    for w in o.observed().windows(2) {
        assert!(w[0].t <= w[1].t);
    }
}

#[test]
fn uniform_barrel_masking_grows_with_population() {
    // The AU caching effect: the visible fraction shrinks as N grows.
    let visible_fraction = |n: u64| {
        let o = ScenarioSpec::builder(DgaFamily::murofet())
            .population(n)
            .seed(6)
            .build()
            .expect("valid")
            .run(ExecPolicy::default());
        o.observed().len() as f64 / o.raw().len() as f64
    };
    let small = visible_fraction(8);
    let large = visible_fraction(128);
    assert!(
        large < small,
        "visible fraction should shrink with N: {small} -> {large}"
    );
}
