//! End-to-end fused streaming pipeline: simulate → cache-filter → fault →
//! match, with no phase ever holding the whole trace. Each shard the
//! scenario releases feeds a [`StreamMatcher`] immediately, and the final
//! matched traffic (and the landscape charted from it) must be
//! bit-identical to the batch pipeline's.

use botmeter::core::{BotMeter, BotMeterConfig, ChartRequest};
use botmeter::dga::DgaFamily;
use botmeter::exec::ExecPolicy;
use botmeter::faults::{FaultModel, FaultPlan};
use botmeter::matcher::{match_stream, ExactMatcher, StreamMatcher};
use botmeter::obs::Obs;
use botmeter::sim::{PipelineMode, ScenarioSpec};

fn spec(mode: PipelineMode) -> ScenarioSpec {
    ScenarioSpec::builder(DgaFamily::new_goz())
        .population(64)
        .num_epochs(2)
        .seed(19)
        .faults(
            FaultPlan::new(5)
                .with(FaultModel::Drop { rate: 0.2 })
                .with(FaultModel::Reorder {
                    rate: 0.2,
                    max_displacement: 4,
                }),
        )
        .pipeline(mode)
        .build()
        .expect("valid scenario")
}

#[test]
fn fused_streaming_match_equals_batch_match() {
    std::env::set_var("BOTMETER_THREADS", "4");
    for policy in [ExecPolicy::Sequential, ExecPolicy::parallel()] {
        // Reference: materialize everything, then match the whole stream.
        let batch = spec(PipelineMode::Materialize).run(policy);
        let matcher = ExactMatcher::from_family(batch.family(), 0..2);
        let expected = match_stream(batch.observed(), &matcher, policy);

        // Fused: every released shard goes straight into the matcher.
        let streaming_spec = spec(PipelineMode::Streaming { shard: None });
        let mut stream_matcher = StreamMatcher::new(&matcher, policy, Obs::noop());
        let outcome =
            streaming_spec.run_streaming_each(policy, |chunk| stream_matcher.ingest(chunk));
        let matched = stream_matcher.finish();

        assert!(outcome.raw().is_empty(), "streaming materialized the trace");
        assert_eq!(
            outcome.observed(),
            batch.observed(),
            "observed trace diverged ({policy:?})"
        );
        assert_eq!(matched, expected, "matched traffic diverged ({policy:?})");

        // And the landscape charted from the streamed observations agrees.
        let meter = BotMeter::new(BotMeterConfig::new(outcome.family().clone()));
        let from_stream = meter.chart_with(
            &ChartRequest::new(outcome.observed())
                .epochs(0..2)
                .policy(policy),
        );
        let from_batch = meter.chart_with(
            &ChartRequest::new(batch.observed())
                .epochs(0..2)
                .policy(policy),
        );
        assert_eq!(from_stream, from_batch, "landscape diverged ({policy:?})");
    }
}
