//! Exact-mode regression guard: charting from the raw observed stream must
//! stay **byte-identical** to the pre-sketch pipeline (PR 8 behavior).
//!
//! The committed fixtures under `tests/golden/` were generated from the
//! pipeline as it stood before the `botmeter-sketch` telemetry frontend
//! landed. Any change to matching, slicing, estimation or `Landscape`
//! serialisation that alters exact-mode output — even a serde field that
//! sneaks into the JSON — fails here.
//!
//! To regenerate after an *intentional* output change:
//! `BOTMETER_BLESS_GOLDEN=1 cargo test --test exact_golden`.

use botmeter::prelude::*;
use std::path::PathBuf;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn chart_json(
    family: DgaFamily,
    population: u64,
    seed: u64,
    epochs: std::ops::Range<u64>,
) -> String {
    let outcome = ScenarioSpec::builder(family)
        .population(population)
        .num_epochs(epochs.end)
        .seed(seed)
        .build()
        .expect("valid scenario")
        .run(ExecPolicy::Sequential);
    let meter = BotMeter::new(botmeter::core::BotMeterConfig::new(
        outcome.family().clone(),
    ));
    let landscape = meter
        .try_chart_with(
            &ChartRequest::new(outcome.observed())
                .epochs(epochs)
                .policy(ExecPolicy::Sequential),
        )
        .expect("chartable");
    let mut json = serde_json::to_string_pretty(&landscape).expect("serialisable");
    json.push('\n');
    json
}

fn check_golden(name: &str, json: &str) {
    let path = golden_path(name);
    if std::env::var_os("BOTMETER_BLESS_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().expect("parent")).expect("mkdir golden");
        std::fs::write(&path, json).expect("write golden");
        return;
    }
    let committed = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden fixture {}: {e}", path.display()));
    assert_eq!(
        committed, json,
        "exact-mode landscape for {name} diverged from the committed pre-sketch \
         fixture; if the change is intentional, regenerate with \
         BOTMETER_BLESS_GOLDEN=1 cargo test --test exact_golden"
    );
}

#[test]
fn exact_mode_newgoz_byte_identical_to_pre_sketch_pipeline() {
    check_golden(
        "exact_newgoz.json",
        &chart_json(DgaFamily::new_goz(), 48, 21, 0..2),
    );
}

#[test]
fn exact_mode_murofet_byte_identical_to_pre_sketch_pipeline() {
    check_golden(
        "exact_murofet.json",
        &chart_json(DgaFamily::murofet(), 32, 9, 0..2),
    );
}
