//! Scaled-down checks of the paper's qualitative claims (§V): who wins,
//! in which regime, and which knobs hurt which estimator. These mirror the
//! full Fig. 6 sweeps run by `botmeter-bench`, at test-suite scale.

use botmeter::core::{
    absolute_relative_error, BernoulliEstimator, CoverageEstimator, EstimationContext, Estimator,
    PoissonEstimator, TimingEstimator,
};
use botmeter::dga::DgaFamily;
use botmeter::dns::{ServerId, SimDuration, TtlPolicy};
use botmeter::exec::ExecPolicy;
use botmeter::matcher::{match_stream, DetectionWindow, ExactMatcher};
use botmeter::sim::{ActivationModel, ScenarioSpec};

fn mean_are<E: Estimator>(
    estimator: &E,
    family: fn() -> DgaFamily,
    population: u64,
    ttl: TtlPolicy,
    activation: ActivationModel,
    seeds: std::ops::Range<u64>,
) -> f64 {
    let mut sum = 0.0;
    let mut n = 0;
    for seed in seeds {
        let outcome = ScenarioSpec::builder(family())
            .population(population)
            .ttl(ttl)
            .activation(activation)
            .seed(seed)
            .build()
            .expect("valid scenario")
            .run(ExecPolicy::default());
        let ctx = EstimationContext::new(outcome.family().clone(), ttl, outcome.granularity());
        let est = estimator.estimate(outcome.observed(), &ctx);
        sum += absolute_relative_error(est, outcome.ground_truth()[0] as f64);
        n += 1;
    }
    sum / n as f64
}

/// Fig. 6(a), AU panel: MT's error grows with N (cache collisions mask
/// bots), while MP stays accurate.
#[test]
fn claim_mt_degrades_with_population_on_au() {
    let ttl = TtlPolicy::paper_default();
    let act = ActivationModel::ConstantRate;
    let mt_small = mean_are(&TimingEstimator, DgaFamily::murofet, 16, ttl, act, 0..4);
    let mt_large = mean_are(&TimingEstimator, DgaFamily::murofet, 256, ttl, act, 0..4);
    assert!(
        mt_large > mt_small + 0.2,
        "MT should degrade on AU: {mt_small} -> {mt_large}"
    );
    let mp_large = mean_are(
        &PoissonEstimator::new(),
        DgaFamily::murofet,
        256,
        ttl,
        act,
        0..4,
    );
    assert!(
        mp_large < mt_large,
        "MP ({mp_large}) should beat MT ({mt_large}) at N=256"
    );
}

/// Fig. 6(c): longer negative TTLs hurt MT on AU; MP is less sensitive;
/// the NXD-set statistics (Coverage on AR) barely move.
#[test]
fn claim_ttl_sensitivity_ordering() {
    let act = ActivationModel::ConstantRate;
    let short = TtlPolicy::paper_default().with_negative(SimDuration::from_mins(20));
    let long = TtlPolicy::paper_default().with_negative(SimDuration::from_mins(320));

    let mt_short = mean_are(&TimingEstimator, DgaFamily::murofet, 64, short, act, 0..4);
    let mt_long = mean_are(&TimingEstimator, DgaFamily::murofet, 64, long, act, 0..4);
    assert!(
        mt_long > mt_short,
        "longer negative TTL should hurt MT on AU: {mt_short} -> {mt_long}"
    );

    let mc_short = mean_are(&CoverageEstimator, DgaFamily::new_goz, 64, short, act, 0..4);
    let mc_long = mean_are(&CoverageEstimator, DgaFamily::new_goz, 64, long, act, 0..4);
    assert!(
        (mc_long - mc_short).abs() < 0.25,
        "Coverage should shrug off TTL changes: {mc_short} vs {mc_long}"
    );
}

/// Fig. 6(d): strong rate dynamics (σ = 2.5) hurt the Poisson estimator's
/// stationarity assumption more than the NXD-set statistics.
#[test]
fn claim_rate_dynamics_hurt_mp_not_mb() {
    let ttl = TtlPolicy::paper_default();
    let calm = ActivationModel::ConstantRate;
    let wild = ActivationModel::DynamicRate { sigma: 2.5 };

    let mp_calm = mean_are(
        &PoissonEstimator::new(),
        DgaFamily::murofet,
        64,
        ttl,
        calm,
        0..6,
    );
    let mp_wild = mean_are(
        &PoissonEstimator::new(),
        DgaFamily::murofet,
        64,
        ttl,
        wild,
        0..6,
    );
    let mb_calm = mean_are(
        &BernoulliEstimator::default(),
        DgaFamily::new_goz,
        64,
        ttl,
        calm,
        0..6,
    );
    let mb_wild = mean_are(
        &BernoulliEstimator::default(),
        DgaFamily::new_goz,
        64,
        ttl,
        wild,
        0..6,
    );

    let mp_delta = mp_wild - mp_calm;
    let mb_delta = mb_wild - mb_calm;
    assert!(
        mp_delta > mb_delta - 0.1,
        "σ should hit MP harder than MB: ΔMP {mp_delta} vs ΔMB {mb_delta}"
    );
}

/// Fig. 6(e): a shrinking detection window hurts the NXD-set estimators
/// (MB/MC) while MP's temporal statistic survives.
#[test]
fn claim_missing_rate_hurts_set_statistics() {
    let run_with_window = |family: DgaFamily, estimator: &dyn Estimator, missing: f64| -> f64 {
        let mut sum = 0.0;
        for seed in 0..4u64 {
            let outcome = ScenarioSpec::builder(family.clone())
                .population(64)
                .seed(900 + seed)
                .build()
                .expect("valid")
                .run(ExecPolicy::default());
            let exact = ExactMatcher::from_family(&family, 0..2);
            let window = DetectionWindow::new(&exact, missing, seed);
            let matched = match_stream(outcome.observed(), &window, ExecPolicy::default());
            let lookups = matched.for_server(ServerId(1));
            let ctx = EstimationContext::new(family.clone(), outcome.ttl(), outcome.granularity())
                .with_detection_window(window.known_domains().clone());
            let est = estimator.estimate(lookups, &ctx);
            sum += absolute_relative_error(est, outcome.ground_truth()[0] as f64);
        }
        sum / 4.0
    };

    // The paper-faithful (window-naive) MB degrades steeply with the
    // missing rate, as Fig. 6(e) reports...
    let naive_full = run_with_window(
        DgaFamily::new_goz(),
        &BernoulliEstimator::window_naive(),
        0.0,
    );
    let naive_half = run_with_window(
        DgaFamily::new_goz(),
        &BernoulliEstimator::window_naive(),
        0.5,
    );
    assert!(
        naive_half > naive_full + 0.5,
        "50% missing domains should break naive MB: {naive_full} -> {naive_half}"
    );
    // ...while the window-aware default stays bounded (our repair).
    let aware_half = run_with_window(DgaFamily::new_goz(), &BernoulliEstimator::default(), 0.5);
    assert!(
        aware_half < naive_half,
        "window-aware MB ({aware_half}) must beat naive ({naive_half}) at 50% missing"
    );

    let mp_full = run_with_window(DgaFamily::murofet(), &PoissonEstimator::new(), 0.0);
    let mp_half = run_with_window(DgaFamily::murofet(), &PoissonEstimator::new(), 0.5);
    assert!(
        (mp_half - mp_full).abs() < 0.3,
        "MP should tolerate a shrunken window: {mp_full} -> {mp_half}"
    );
}

/// Table II: on coarse (1 s) timestamps with no fixed query interval
/// (Ramnit), MT's error exceeds the Poisson estimator's by a wide margin.
#[test]
fn claim_mt_collapses_on_irregular_timing() {
    let mut mt_sum = 0.0;
    let mut mp_sum = 0.0;
    for seed in 0..4u64 {
        let outcome = ScenarioSpec::builder(DgaFamily::ramnit())
            .population(48)
            .granularity(SimDuration::from_secs(1))
            .seed(seed)
            .build()
            .expect("valid")
            .run(ExecPolicy::default());
        let ctx = EstimationContext::new(
            outcome.family().clone(),
            outcome.ttl(),
            outcome.granularity(),
        );
        let actual = outcome.ground_truth()[0] as f64;
        mt_sum +=
            absolute_relative_error(TimingEstimator.estimate(outcome.observed(), &ctx), actual);
        mp_sum += absolute_relative_error(
            PoissonEstimator::new().estimate(outcome.observed(), &ctx),
            actual,
        );
    }
    assert!(
        mp_sum < mt_sum,
        "MP ({mp_sum}) must beat MT ({mt_sum}) on Ramnit with 1s timestamps"
    );
}
