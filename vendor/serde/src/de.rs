//! Deserialization half of the vendored serde surface.

use crate::content::Content;
use crate::ContentError;
use std::fmt;

/// Errors produced by a [`Deserializer`].
pub trait Error: Sized + fmt::Display + fmt::Debug {
    /// Builds an error from an arbitrary message.
    fn custom<T: fmt::Display>(msg: T) -> Self;
}

/// A data format that can produce the [`Content`] model.
pub trait Deserializer<'de>: Sized {
    /// Error type.
    type Error: Error;

    /// Parses the input into a [`Content`] tree.
    fn deserialize_content(self) -> Result<Content, Self::Error>;
}

/// A type that can be deserialized from any [`Deserializer`].
pub trait Deserialize<'de>: Sized {
    /// Deserializes `Self`.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// A type deserializable without borrowing from the input.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

/// A [`Deserializer`] fed directly from a [`Content`] tree.
pub struct ContentDeserializer(pub Content);

impl<'de> Deserializer<'de> for ContentDeserializer {
    type Error = ContentError;

    fn deserialize_content(self) -> Result<Content, ContentError> {
        Ok(self.0)
    }
}

/// Deserializes any owned value from a [`Content`] tree.
pub fn from_content<T: DeserializeOwned>(content: Content) -> Result<T, ContentError> {
    T::deserialize(ContentDeserializer(content))
}

fn unexpected<E: Error>(expected: &str, got: &Content) -> E {
    E::custom(format!(
        "invalid type: expected {expected}, found {}",
        got.kind()
    ))
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::Str(s) => Ok(s),
            other => Err(unexpected("a string", &other)),
        }
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::Bool(b) => Ok(b),
            other => Err(unexpected("a boolean", &other)),
        }
    }
}

macro_rules! impl_deserialize_unsigned {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                match deserializer.deserialize_content()? {
                    Content::U64(v) => <$t>::try_from(v)
                        .map_err(|_| D::Error::custom("integer out of range")),
                    other => Err(unexpected("an unsigned integer", &other)),
                }
            }
        }
    )*};
}

macro_rules! impl_deserialize_signed {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                let content = deserializer.deserialize_content()?;
                let wide: i64 = match content {
                    Content::U64(v) => i64::try_from(v)
                        .map_err(|_| D::Error::custom("integer out of range"))?,
                    Content::I64(v) => v,
                    other => return Err(unexpected("an integer", &other)),
                };
                <$t>::try_from(wide).map_err(|_| D::Error::custom("integer out of range"))
            }
        }
    )*};
}

impl_deserialize_unsigned!(u8, u16, u32, u64, usize);
impl_deserialize_signed!(i8, i16, i32, i64, isize);

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::F64(v) => Ok(v),
            Content::U64(v) => Ok(v as f64),
            Content::I64(v) => Ok(v as f64),
            other => Err(unexpected("a number", &other)),
        }
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        f64::deserialize(deserializer).map(|v| v as f32)
    }
}

impl<'de, T: DeserializeOwned> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::Seq(items) => items
                .into_iter()
                .map(|item| from_content(item).map_err(D::Error::custom))
                .collect(),
            other => Err(unexpected("a sequence", &other)),
        }
    }
}

impl<'de, T: DeserializeOwned> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::Null => Ok(None),
            other => from_content(other).map(Some).map_err(D::Error::custom),
        }
    }
}

impl<'de> Deserialize<'de> for std::net::Ipv4Addr {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::Str(s) => s
                .parse()
                .map_err(|e| D::Error::custom(format!("invalid IPv4 address: {e}"))),
            other => Err(unexpected("an IPv4 address string", &other)),
        }
    }
}
