//! The self-describing data model every vendored format converts through.

/// A serialized value in a JSON-like shape.
///
/// Maps preserve insertion order (field declaration order for derived
/// structs), which is what gives the JSON codec its stable, test-visible
/// field ordering.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// Absent / `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative integer (always `< 0`; non-negative values use `U64`).
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Content>),
    /// An ordered string-keyed map.
    Map(Vec<(String, Content)>),
}

impl Content {
    /// A short human-readable description for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "boolean",
            Content::U64(_) | Content::I64(_) => "integer",
            Content::F64(_) => "number",
            Content::Str(_) => "string",
            Content::Seq(_) => "sequence",
            Content::Map(_) => "map",
        }
    }
}
