//! Offline stand-in for `serde`.
//!
//! The workspace builds with no access to a crates registry, so this crate
//! vendors the slice of the serde API the repo actually uses: the
//! [`Serialize`]/[`Deserialize`] traits (and their derive macros from the
//! sibling `serde_derive` stub), driven through a self-describing
//! [`Content`] data model instead of serde's visitor machinery. Formats
//! (here: the vendored `serde_json`) implement [`Serializer`] /
//! [`Deserializer`] by converting to and from [`Content`].

#![forbid(unsafe_code)]

use std::fmt;

pub mod content;
pub mod de;
pub mod ser;

pub use content::Content;
pub use de::{Deserialize, DeserializeOwned, Deserializer};
pub use ser::{Serialize, Serializer};
// The derive macros share names with the traits; macros live in a separate
// namespace so both `use`s coexist (mirroring real serde's re-export).
pub use serde_derive::{Deserialize, Serialize};

/// Error raised while converting through the [`Content`] model.
#[derive(Debug, Clone)]
pub struct ContentError(pub String);

impl fmt::Display for ContentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ContentError {}

impl ser::Error for ContentError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        ContentError(msg.to_string())
    }
}

impl de::Error for ContentError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        ContentError(msg.to_string())
    }
}

/// Glue used by the generated derive code. Not a public API.
#[doc(hidden)]
pub mod __private {
    pub use crate::content::Content;
    pub use crate::de::from_content;
    pub use crate::ser::to_content;
    pub use crate::ContentError;

    /// Re-exported for generated code.
    pub use std::result::Result;
}
