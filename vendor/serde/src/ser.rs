//! Serialization half of the vendored serde surface.

use crate::content::Content;
use crate::ContentError;
use std::fmt;

/// Errors produced by a [`Serializer`].
pub trait Error: Sized + fmt::Display + fmt::Debug {
    /// Builds an error from an arbitrary message.
    fn custom<T: fmt::Display>(msg: T) -> Self;
}

/// A data format that can consume the [`Content`] model.
///
/// All scalar entry points default to routing through
/// [`Serializer::serialize_content`], so formats implement one method and
/// hand-written `Serialize` impls keep their familiar
/// `serializer.serialize_str(...)` shape.
pub trait Serializer: Sized {
    /// Output produced on success.
    type Ok;
    /// Error type.
    type Error: Error;

    /// Consumes a fully built [`Content`] tree.
    fn serialize_content(self, content: Content) -> Result<Self::Ok, Self::Error>;

    /// Serializes a string.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error> {
        self.serialize_content(Content::Str(v.to_owned()))
    }

    /// Serializes a boolean.
    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error> {
        self.serialize_content(Content::Bool(v))
    }

    /// Serializes an unsigned integer.
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error> {
        self.serialize_content(Content::U64(v))
    }

    /// Serializes a signed integer.
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error> {
        if v >= 0 {
            self.serialize_content(Content::U64(v as u64))
        } else {
            self.serialize_content(Content::I64(v))
        }
    }

    /// Serializes a float.
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error> {
        self.serialize_content(Content::F64(v))
    }

    /// Serializes a unit value as `null`.
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error> {
        self.serialize_content(Content::Null)
    }
}

/// A type that can be serialized into any [`Serializer`].
pub trait Serialize {
    /// Serializes `self`.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

macro_rules! impl_serialize_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_u64(*self as u64)
            }
        }
    )*};
}

macro_rules! impl_serialize_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_i64(*self as i64)
            }
        }
    )*};
}

impl_serialize_unsigned!(u8, u16, u32, u64, usize);
impl_serialize_signed!(i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_bool(*self)
    }
}

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f64(*self)
    }
}

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f64(*self as f64)
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let items = self
            .iter()
            .map(to_content)
            .collect::<Result<Vec<_>, _>>()
            .map_err(S::Error::custom)?;
        serializer.serialize_content(Content::Seq(items))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            None => serializer.serialize_content(Content::Null),
            Some(v) => v.serialize(serializer),
        }
    }
}

impl Serialize for std::net::Ipv4Addr {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(&self.to_string())
    }
}

/// The serializer that materialises a [`Content`] tree.
struct ContentSerializer;

impl Serializer for ContentSerializer {
    type Ok = Content;
    type Error = ContentError;

    fn serialize_content(self, content: Content) -> Result<Content, ContentError> {
        Ok(content)
    }
}

/// Serializes any value into the [`Content`] model.
pub fn to_content<T: Serialize + ?Sized>(value: &T) -> Result<Content, ContentError> {
    value.serialize(ContentSerializer)
}
