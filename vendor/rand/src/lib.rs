//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to a crates registry, so the
//! workspace vendors a minimal, API-compatible subset of `rand 0.8`: the
//! [`RngCore`]/[`Rng`]/[`SeedableRng`] traits, uniform range sampling for the
//! integer and float types the simulator draws, and [`seq::SliceRandom`]
//! shuffles. Streams are deterministic for a fixed seed but are *not*
//! bit-compatible with the upstream crate (nothing in the workspace relies on
//! upstream streams — only on determinism and statistical quality).

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A low-level source of random 32/64-bit words.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types drawable from the "standard" distribution (`Rng::gen`).
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl StandardSample for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardSample for i64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

mod private {
    /// Draws a uniform value in `[0, bound)` by widening multiplication
    /// (Lemire's method without the rejection step; the bias is `< bound/2^64`,
    /// far below anything the simulator or tests can observe).
    pub fn bounded_u64<R: super::RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        (((rng.next_u64() as u128) * (bound as u128)) >> 64) as u64
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + private::bounded_u64(rng, width) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let width = (end as u64).wrapping_sub(start as u64);
                if width == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + private::bounded_u64(rng, width + 1) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample_standard(rng);
        let v = self.start + (self.end - self.start) * u;
        // Guard against rounding up to the exclusive bound.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        start + (end - start) * f64::sample_standard(rng)
    }
}

/// High-level convenience methods on any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution for `T`.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_one(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be in [0, 1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The fixed-size seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via SplitMix64 and builds the
    /// generator from it.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Sequence-related random operations (`rand::seq`).
pub mod seq {
    use super::{private, Rng};

    /// Shuffling and random selection on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Moves `amount` uniformly chosen elements to the front, in random
        /// order, and returns `(chosen, rest)`.
        fn partial_shuffle<R: Rng + ?Sized>(
            &mut self,
            rng: &mut R,
            amount: usize,
        ) -> (&mut [Self::Item], &mut [Self::Item]);

        /// Returns one uniformly chosen element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = private::bounded_u64(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn partial_shuffle<R: Rng + ?Sized>(
            &mut self,
            rng: &mut R,
            amount: usize,
        ) -> (&mut [T], &mut [T]) {
            let amount = amount.min(self.len());
            for i in 0..amount {
                let remaining = self.len() - i;
                let j = i + private::bounded_u64(rng, remaining as u64) as usize;
                self.swap(i, j);
            }
            self.split_at_mut(amount)
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[private::bounded_u64(rng, self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn gen_f64_unit_interval() {
        let mut rng = Counter(42);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_bounds_hold() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(0u64..=3);
            assert!(w <= 3);
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Counter(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn partial_shuffle_splits() {
        let mut rng = Counter(9);
        let mut v: Vec<u32> = (0..20).collect();
        let (head, tail) = v.partial_shuffle(&mut rng, 5);
        assert_eq!(head.len(), 5);
        assert_eq!(tail.len(), 15);
    }
}
