//! Offline stand-in for `serde_json`: a compact JSON codec over the vendored
//! serde crate's [`Content`] data model.
//!
//! Output conventions match real `serde_json` where the workspace's tests can
//! observe them: struct fields keep declaration order, newtype structs are
//! transparent, enums are externally tagged, strings are minimally escaped,
//! and integral floats print with a trailing `.0`.

#![forbid(unsafe_code)]

use serde::content::Content;
use serde::de::DeserializeOwned;
use serde::ser::Serialize;
use std::fmt;

/// A JSON serialization or parse failure.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl serde::ser::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

impl serde::de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let content = serde::ser::to_content(value).map_err(|e| Error(e.0))?;
    let mut out = String::new();
    write_content(&mut out, &content, None, 0);
    Ok(out)
}

/// Serializes `value` to JSON indented with two spaces.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let content = serde::ser::to_content(value).map_err(|e| Error(e.0))?;
    let mut out = String::new();
    write_content(&mut out, &content, Some("  "), 0);
    Ok(out)
}

/// Deserializes a value from a JSON string.
pub fn from_str<T: DeserializeOwned>(s: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let content = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    serde::de::from_content(content).map_err(|e| Error(e.0))
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(out: &mut String, v: f64) {
    if !v.is_finite() {
        // Real serde_json refuses non-finite floats; emit null leniently.
        out.push_str("null");
    } else if v == v.trunc() && v.abs() < 1e16 {
        out.push_str(&format!("{v:.1}"));
    } else {
        out.push_str(&format!("{v}"));
    }
}

fn write_content(out: &mut String, content: &Content, indent: Option<&str>, depth: usize) {
    let (open_sep, item_sep, close_sep): (String, String, String) = match indent {
        Some(pad) => (
            format!("\n{}", pad.repeat(depth + 1)),
            format!(",\n{}", pad.repeat(depth + 1)),
            format!("\n{}", pad.repeat(depth)),
        ),
        None => (String::new(), ",".to_string(), String::new()),
    };
    let kv_sep = if indent.is_some() { ": " } else { ":" };
    match content {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => write_f64(out, *v),
        Content::Str(s) => write_escaped(out, s),
        Content::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                out.push_str(if i == 0 { &open_sep } else { &item_sep });
                write_content(out, item, indent, depth + 1);
            }
            out.push_str(&close_sep);
            out.push(']');
        }
        Content::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                out.push_str(if i == 0 { &open_sep } else { &item_sep });
                write_escaped(out, k);
                out.push_str(kv_sep);
                write_content(out, v, indent, depth + 1);
            }
            out.push_str(&close_sep);
            out.push('}');
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Content, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Content::Str(self.parse_string()?)),
            Some(b't') if self.eat_keyword("true") => Ok(Content::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Content::Bool(false)),
            Some(b'n') if self.eat_keyword("null") => Ok(Content::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(Error::new(format!(
                "unexpected character at byte {}",
                self.pos
            ))),
        }
    }

    fn parse_object(&mut self) -> Result<Content, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Content, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(Error::new("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by this workspace.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("unknown escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Content::F64)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else if let Some(stripped) = text.strip_prefix('-') {
            stripped
                .parse::<u64>()
                .ok()
                .and_then(|v| i64::try_from(v).ok())
                .map(|v| Content::I64(-v))
                .ok_or_else(|| Error::new(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Content::U64)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(to_string(&5u64).unwrap(), "5");
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string("hi").unwrap(), "\"hi\"");
        assert_eq!(from_str::<u64>("5").unwrap(), 5);
        assert_eq!(from_str::<f64>("2.5").unwrap(), 2.5);
        assert_eq!(from_str::<f64>("3").unwrap(), 3.0);
        assert_eq!(from_str::<String>("\"a\\nb\"").unwrap(), "a\nb");
    }

    #[test]
    fn seq_and_map_shapes() {
        assert_eq!(to_string(&vec![1u64, 2, 3]).unwrap(), "[1,2,3]");
        let v: Vec<u64> = from_str("[1, 2, 3]").unwrap();
        assert_eq!(v, vec![1, 2, 3]);
        let none: Option<u64> = from_str("null").unwrap();
        assert_eq!(none, None);
    }

    #[test]
    fn pretty_indents() {
        let s = to_string_pretty(&vec![1u64, 2]).unwrap();
        assert_eq!(s, "[\n  1,\n  2\n]");
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<u64>("5 x").is_err());
        assert!(from_str::<u64>("").is_err());
    }
}
