//! Offline stand-in for `rand_chacha`: a genuine ChaCha12 keystream generator
//! behind the vendored [`rand`] traits.
//!
//! The block function is the real ChaCha quarter-round network (12 rounds), so
//! statistical quality matches the upstream crate; the word-serialisation
//! order is deterministic for a fixed seed but not bit-compatible with
//! upstream (the workspace only relies on determinism).

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

const BLOCK_WORDS: usize = 16;

/// A ChaCha stream cipher based generator with 12 rounds.
#[derive(Debug, Clone)]
pub struct ChaCha12Rng {
    /// Key + constants + counter/nonce input block.
    state: [u32; BLOCK_WORDS],
    /// Current output block.
    buf: [u32; BLOCK_WORDS],
    /// Next unread word in `buf`; `BLOCK_WORDS` forces a refill.
    index: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha12Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..6 {
            // Column rounds.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal rounds.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, inp) in working.iter_mut().zip(self.state.iter()) {
            *out = out.wrapping_add(*inp);
        }
        self.buf = working;
        self.index = 0;
        // 64-bit block counter in words 12..14.
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
    }
}

impl RngCore for ChaCha12Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= BLOCK_WORDS {
            self.refill();
        }
        let word = self.buf[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

impl SeedableRng for ChaCha12Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; BLOCK_WORDS];
        // "expand 32-byte k" sigma constants.
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            state[4 + i] = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        // Counter and nonce start at zero.
        ChaCha12Rng {
            state,
            buf: [0; BLOCK_WORDS],
            index: BLOCK_WORDS,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = ChaCha12Rng::seed_from_u64(42);
        let mut b = ChaCha12Rng::seed_from_u64(42);
        let xs: Vec<u64> = (0..100).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..100).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha12Rng::seed_from_u64(1);
        let mut b = ChaCha12Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn uniform_f64_mean_near_half() {
        let mut rng = ChaCha12Rng::seed_from_u64(7);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean was {mean}");
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut rng = ChaCha12Rng::seed_from_u64(5);
        rng.next_u64();
        let mut copy = rng.clone();
        assert_eq!(rng.next_u64(), copy.next_u64());
    }
}
