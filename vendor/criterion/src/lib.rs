//! Offline stand-in for `criterion`.
//!
//! A minimal wall-clock benchmark harness with the criterion API shape the
//! workspace's `benches/` use: [`Criterion::benchmark_group`],
//! `bench_function` / `bench_with_input`, [`Throughput`], [`BenchmarkId`],
//! [`black_box`], and the [`criterion_group!`]/[`criterion_main!`] macros.
//! It reports mean time per iteration (and derived throughput) on stdout; no
//! statistical analysis, plotting, or saved baselines.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque value barrier; defers to `std::hint::black_box`.
pub fn black_box<T>(dummy: T) -> T {
    std::hint::black_box(dummy)
}

/// A benchmark identifier: `function` or `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id from just a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Units processed per iteration, for derived throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// Passed to the benchmark closure; runs and times the measured routine.
pub struct Bencher {
    iters_done: u64,
    elapsed: Duration,
    target_time: Duration,
}

impl Bencher {
    /// Calls `routine` repeatedly until the sampling window is filled,
    /// recording total elapsed time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and calibration: time a single call first.
        let start = Instant::now();
        black_box(routine());
        let first = start.elapsed().max(Duration::from_nanos(1));
        let remaining = self.target_time.saturating_sub(first);
        let planned = (remaining.as_nanos() / first.as_nanos()).min(10_000) as u64;
        let timed = Instant::now();
        for _ in 0..planned {
            black_box(routine());
        }
        let body = timed.elapsed();
        self.iters_done = planned + 1;
        self.elapsed = first + body;
    }
}

fn format_duration(nanos: f64) -> String {
    if nanos < 1_000.0 {
        format!("{nanos:.1} ns")
    } else if nanos < 1_000_000.0 {
        format!("{:.2} µs", nanos / 1_000.0)
    } else if nanos < 1_000_000_000.0 {
        format!("{:.2} ms", nanos / 1_000_000.0)
    } else {
        format!("{:.3} s", nanos / 1_000_000_000.0)
    }
}

fn run_one(
    group: Option<&str>,
    id: &str,
    throughput: Option<Throughput>,
    target_time: Duration,
    f: impl FnOnce(&mut Bencher),
) {
    let mut bencher = Bencher {
        iters_done: 0,
        elapsed: Duration::ZERO,
        target_time,
    };
    f(&mut bencher);
    let name = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    if bencher.iters_done == 0 {
        println!("bench {name:<50} (no iterations recorded)");
        return;
    }
    let per_iter = bencher.elapsed.as_nanos() as f64 / bencher.iters_done as f64;
    let mut line = format!(
        "bench {name:<50} {:>12}/iter ({} iters)",
        format_duration(per_iter),
        bencher.iters_done
    );
    if let Some(tp) = throughput {
        let (count, unit) = match tp {
            Throughput::Elements(n) => (n, "elem"),
            Throughput::Bytes(n) => (n, "B"),
        };
        if per_iter > 0.0 {
            let rate = count as f64 / (per_iter / 1e9);
            line.push_str(&format!("  {rate:.3e} {unit}/s"));
        }
    }
    println!("{line}");
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    #[allow(dead_code)]
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub sizes samples by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Sets the throughput used for derived rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        run_one(
            Some(&self.name),
            &id.id,
            self.throughput,
            Criterion::target_time(),
            f,
        );
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I, F: FnOnce(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        run_one(
            Some(&self.name),
            &id.id,
            self.throughput,
            Criterion::target_time(),
            |b| f(b, input),
        );
        self
    }

    /// Ends the group (reporting is immediate, so this is a no-op).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    fn target_time() -> Duration {
        std::env::var("CRITERION_TARGET_TIME_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .map(Duration::from_millis)
            .unwrap_or_else(|| Duration::from_millis(300))
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            criterion: self,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        run_one(None, &id.id, None, Self::target_time(), f);
        self
    }
}

/// Declares a group function running each listed benchmark.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares `main` for a benchmark binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $($group(&mut criterion);)+
        }
    };
}
