//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the item
//! shapes this workspace uses — non-generic named-field structs, tuple
//! structs, and enums with unit / tuple / struct variants — by walking the
//! raw `proc_macro` token stream directly (no `syn`/`quote`, which are not
//! available offline). The generated code targets the vendored `serde`
//! crate's [`Content`] data model:
//!
//! * named structs ⇢ ordered maps keyed by field name;
//! * one-field tuple structs ⇢ transparent newtypes;
//! * enums ⇢ externally tagged (`"Variant"` or `{"Variant": ...}`),
//!   matching real serde's JSON representation.
//!
//! Of the `#[serde(...)]` attributes, named fields support
//! `#[serde(default)]` (a missing key deserialises to
//! `Default::default()`) and `#[serde(skip_serializing_if = "path")]`
//! (the field's key is omitted when `path(&field)` is true, matching real
//! serde — used for schema-evolution fields that must keep old JSON
//! byte-stable); everything else the workspace uses none of.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One named field: its identifier, whether `#[serde(default)]` lets a
/// missing key fall back to `Default::default()` on deserialisation, and
/// the `#[serde(skip_serializing_if = "...")]` predicate path, if any.
#[derive(Debug, Clone)]
struct Field {
    name: String,
    default: bool,
    skip_if: Option<String>,
}

/// The field layout of a struct or enum variant.
#[derive(Debug, Clone)]
enum Fields {
    Unit,
    Named(Vec<Field>),
    Tuple(usize),
}

#[derive(Debug, Clone)]
struct Variant {
    name: String,
    fields: Fields,
}

enum ItemKind {
    Struct(Fields),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    kind: ItemKind,
}

/// Consumes leading outer attributes (`#[...]`, including doc comments).
fn skip_attributes(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                i += 2;
            }
            _ => break,
        }
    }
    i
}

/// Parses a `#[...]` attribute body (the bracket group's stream) as a
/// `serde(...)` field attribute, folding any recognised options into
/// `(default, skip_if)`. Unrecognised options are ignored, like real
/// serde ignores options for features a type does not use.
fn parse_serde_field_attr(
    group: &proc_macro::Group,
    default: &mut bool,
    skip_if: &mut Option<String>,
) {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let args = match (tokens.first(), tokens.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args)))
            if id.to_string() == "serde" && args.delimiter() == Delimiter::Parenthesis =>
        {
            args.stream().into_iter().collect::<Vec<TokenTree>>()
        }
        _ => return,
    };
    let mut i = 0;
    while i < args.len() {
        if let TokenTree::Ident(id) = &args[i] {
            match id.to_string().as_str() {
                "default" => *default = true,
                "skip_serializing_if" => {
                    // `skip_serializing_if = "path::to::predicate"`: the
                    // literal token keeps its surrounding quotes.
                    if let (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit))) =
                        (args.get(i + 1), args.get(i + 2))
                    {
                        if eq.as_char() == '=' {
                            let raw = lit.to_string();
                            *skip_if = Some(raw.trim_matches('"').to_string());
                            i += 2;
                        }
                    }
                }
                _ => {}
            }
        }
        i += 1;
    }
}

/// Like [`skip_attributes`], but also collects the recognised
/// `#[serde(...)]` field options from the consumed attributes.
fn skip_field_attributes(tokens: &[TokenTree], mut i: usize) -> (usize, bool, Option<String>) {
    let mut default = false;
    let mut skip_if = None;
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                parse_serde_field_attr(g, &mut default, &mut skip_if);
                i += 2;
            }
            _ => break,
        }
    }
    (i, default, skip_if)
}

/// Consumes a visibility qualifier (`pub`, `pub(crate)`, ...).
fn skip_visibility(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Splits a token slice on top-level commas, tracking `<...>` nesting so
/// commas inside generic arguments don't split (e.g. `BTreeMap<K, V>`).
fn split_top_level_commas(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut parts = Vec::new();
    let mut current = Vec::new();
    let mut angle_depth = 0i32;
    for tt in tokens {
        if let TokenTree::Punct(p) = tt {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    parts.push(std::mem::take(&mut current));
                    continue;
                }
                _ => {}
            }
        }
        current.push(tt.clone());
    }
    if !current.is_empty() {
        parts.push(current);
    }
    parts
}

/// Parses the contents of a `{ ... }` fields group into field descriptors.
fn parse_named_fields(group: &[TokenTree]) -> Vec<Field> {
    split_top_level_commas(group)
        .into_iter()
        .filter_map(|field_tokens| {
            let (i, default, skip_if) = skip_field_attributes(&field_tokens, 0);
            let i = skip_visibility(&field_tokens, i);
            match field_tokens.get(i) {
                Some(TokenTree::Ident(id)) => Some(Field {
                    name: id.to_string(),
                    default,
                    skip_if,
                }),
                _ => None,
            }
        })
        .collect()
}

/// Parses the contents of an `enum { ... }` body.
fn parse_variants(group: &[TokenTree]) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < group.len() {
        i = skip_attributes(group, i);
        let name = match group.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => panic!("serde_derive stub: unexpected token in enum body: {other}"),
            None => break,
        };
        i += 1;
        let fields = match group.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Fields::Tuple(split_top_level_commas(&inner).len())
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Fields::Named(parse_named_fields(&inner))
            }
            _ => Fields::Unit,
        };
        // Optional discriminant (`= expr`) is unsupported; skip to the comma.
        while i < group.len() {
            if let TokenTree::Punct(p) = &group[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
        variants.push(Variant { name, fields });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let i = skip_attributes(&tokens, 0);
    let i = skip_visibility(&tokens, i);
    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive stub: expected `struct` or `enum`, got {other:?}"),
    };
    let name = match tokens.get(i + 1) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive stub: expected item name, got {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = tokens.get(i + 2) {
        if p.as_char() == '<' {
            panic!("serde_derive stub: generic types are not supported (item `{name}`)");
        }
    }
    let body = tokens.get(i + 2);
    let kind = match keyword.as_str() {
        "struct" => match body {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                ItemKind::Struct(Fields::Named(parse_named_fields(&inner)))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                ItemKind::Struct(Fields::Tuple(split_top_level_commas(&inner).len()))
            }
            _ => ItemKind::Struct(Fields::Unit),
        },
        "enum" => match body {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                ItemKind::Enum(parse_variants(&inner))
            }
            other => panic!("serde_derive stub: malformed enum body: {other:?}"),
        },
        other => panic!("serde_derive stub: cannot derive for `{other}` items"),
    };
    Item { name, kind }
}

const SER_ERR: &str = "<S::Error as serde::ser::Error>::custom";
const DE_ERR: &str = "<D::Error as serde::de::Error>::custom";

/// `to_content(expr)` mapped into the outer serializer's error type.
fn ser_field(expr: &str) -> String {
    format!("serde::__private::to_content({expr}).map_err({SER_ERR})?")
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::Struct(Fields::Unit) => {
            "serializer.serialize_content(serde::__private::Content::Null)".to_string()
        }
        ItemKind::Struct(Fields::Tuple(1)) => {
            format!("serializer.serialize_content({})", ser_field("&self.0"))
        }
        ItemKind::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> = (0..*n).map(|i| ser_field(&format!("&self.{i}"))).collect();
            format!(
                "serializer.serialize_content(serde::__private::Content::Seq(vec![{}]))",
                items.join(", ")
            )
        }
        ItemKind::Struct(Fields::Named(fields)) => {
            let mut s = String::from("let mut __map = Vec::new();\n");
            for f in fields {
                let name = &f.name;
                let push = format!(
                    "__map.push((\"{name}\".to_string(), {}));\n",
                    ser_field(&format!("&self.{name}"))
                );
                match &f.skip_if {
                    Some(path) => {
                        s.push_str(&format!("if !{path}(&self.{name}) {{ {push} }}\n"));
                    }
                    None => s.push_str(&push),
                }
            }
            s.push_str("serializer.serialize_content(serde::__private::Content::Map(__map))");
            s
        }
        ItemKind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.fields {
                    Fields::Unit => arms.push_str(&format!(
                        "{name}::{vname} => serializer.serialize_content(\
                         serde::__private::Content::Str(\"{vname}\".to_string())),\n"
                    )),
                    Fields::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vname}(__0) => serializer.serialize_content(\
                         serde::__private::Content::Map(vec![(\"{vname}\".to_string(), {})])),\n",
                        ser_field("__0")
                    )),
                    Fields::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("__{i}")).collect();
                        let items: Vec<String> = binders.iter().map(|b| ser_field(b)).collect();
                        arms.push_str(&format!(
                            "{name}::{vname}({}) => serializer.serialize_content(\
                             serde::__private::Content::Map(vec![(\"{vname}\".to_string(), \
                             serde::__private::Content::Seq(vec![{}]))])),\n",
                            binders.join(", "),
                            items.join(", ")
                        ));
                    }
                    Fields::Named(fields) => {
                        let binders = fields
                            .iter()
                            .map(|f| f.name.as_str())
                            .collect::<Vec<_>>()
                            .join(", ");
                        let mut inner = String::from("let mut __fields = Vec::new();\n");
                        for f in fields {
                            let fname = &f.name;
                            let push = format!(
                                "__fields.push((\"{fname}\".to_string(), {}));\n",
                                ser_field(fname)
                            );
                            match &f.skip_if {
                                Some(path) => {
                                    inner.push_str(&format!("if !{path}({fname}) {{ {push} }}\n"))
                                }
                                None => inner.push_str(&push),
                            }
                        }
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {binders} }} => {{ {inner} \
                             serializer.serialize_content(serde::__private::Content::Map(vec![\
                             (\"{vname}\".to_string(), serde::__private::Content::Map(__fields))\
                             ])) }}\n"
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl serde::ser::Serialize for {name} {{\n\
             fn serialize<S: serde::ser::Serializer>(&self, serializer: S) \
                 -> Result<S::Ok, S::Error> {{\n{body}\n}}\n\
         }}"
    )
}

/// Generates the shared "collect named fields out of `__entries`" fragment.
/// `constructor` receives `field_name -> unwrapped expr` pairs. Fields
/// marked `#[serde(default)]` fall back to `Default::default()` when their
/// key is absent; everything else stays a hard "missing field" error.
fn gen_named_field_extraction(path: &str, fields: &[Field]) -> String {
    let mut s = String::new();
    for f in fields {
        let f = &f.name;
        s.push_str(&format!("let mut __f_{f} = None;\n"));
    }
    s.push_str("for (__k, __v) in __entries {\nmatch __k.as_str() {\n");
    for f in fields {
        let f = &f.name;
        s.push_str(&format!(
            "\"{f}\" => {{ __f_{f} = Some(serde::__private::from_content(__v)\
             .map_err({DE_ERR})?); }}\n"
        ));
    }
    // Unknown fields are ignored, matching serde's default for JSON maps.
    s.push_str("_ => {}\n}\n}\n");
    s.push_str(&format!("Ok({path} {{\n"));
    for f in fields {
        let name = &f.name;
        if f.default {
            s.push_str(&format!(
                "{name}: __f_{name}.unwrap_or_else(std::default::Default::default),\n"
            ));
        } else {
            s.push_str(&format!(
                "{name}: __f_{name}.ok_or_else(|| {DE_ERR}(\"missing field `{name}`\"))?,\n"
            ));
        }
    }
    s.push_str("})\n");
    s
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::Struct(Fields::Unit) => format!("let _ = __content; Ok({name})"),
        ItemKind::Struct(Fields::Tuple(1)) => {
            format!("Ok({name}(serde::__private::from_content(__content).map_err({DE_ERR})?))")
        }
        ItemKind::Struct(Fields::Tuple(n)) => {
            let mut s =
                String::from("match __content {\nserde::__private::Content::Seq(__items) => {\n");
            s.push_str(&format!(
                "if __items.len() != {n} {{ return Err({DE_ERR}(\"wrong tuple length\")); }}\n\
                 let mut __it = __items.into_iter();\n"
            ));
            let items: Vec<String> = (0..*n)
                .map(|_| {
                    format!(
                        "serde::__private::from_content(__it.next().unwrap())\
                         .map_err({DE_ERR})?"
                    )
                })
                .collect();
            s.push_str(&format!("Ok({name}({}))\n}}\n", items.join(", ")));
            s.push_str(&format!(
                "__other => Err({DE_ERR}(format!(\"invalid type: expected sequence, \
                 found {{}}\", __other.kind()))),\n}}"
            ));
            s
        }
        ItemKind::Struct(Fields::Named(fields)) => {
            let extraction = gen_named_field_extraction(name, fields);
            format!(
                "match __content {{\nserde::__private::Content::Map(__entries) => {{\n\
                 {extraction}}}\n\
                 __other => Err({DE_ERR}(format!(\"invalid type: expected map, \
                 found {{}}\", __other.kind()))),\n}}"
            )
        }
        ItemKind::Enum(variants) => {
            // Unit variants arrive as plain strings; data variants as
            // single-entry maps keyed by the variant name.
            let mut str_arms = String::new();
            let mut map_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.fields {
                    Fields::Unit => {
                        str_arms.push_str(&format!("\"{vname}\" => Ok({name}::{vname}),\n"));
                        map_arms.push_str(&format!("\"{vname}\" => Ok({name}::{vname}),\n"));
                    }
                    Fields::Tuple(1) => map_arms.push_str(&format!(
                        "\"{vname}\" => Ok({name}::{vname}(\
                         serde::__private::from_content(__v).map_err({DE_ERR})?)),\n"
                    )),
                    Fields::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|_| {
                                format!(
                                    "serde::__private::from_content(__it.next().unwrap())\
                                     .map_err({DE_ERR})?"
                                )
                            })
                            .collect();
                        map_arms.push_str(&format!(
                            "\"{vname}\" => match __v {{\n\
                             serde::__private::Content::Seq(__items) if __items.len() == {n} => {{\n\
                             let mut __it = __items.into_iter();\n\
                             Ok({name}::{vname}({}))\n}}\n\
                             _ => Err({DE_ERR}(\"invalid data for variant `{vname}`\")),\n}},\n",
                            items.join(", ")
                        ));
                    }
                    Fields::Named(fields) => {
                        let extraction =
                            gen_named_field_extraction(&format!("{name}::{vname}"), fields);
                        map_arms.push_str(&format!(
                            "\"{vname}\" => match __v {{\n\
                             serde::__private::Content::Map(__entries) => {{\n{extraction}}}\n\
                             _ => Err({DE_ERR}(\"invalid data for variant `{vname}`\")),\n}},\n"
                        ));
                    }
                }
            }
            format!(
                "match __content {{\n\
                 serde::__private::Content::Str(__s) => match __s.as_str() {{\n{str_arms}\
                 __other => Err({DE_ERR}(format!(\"unknown variant `{{__other}}`\"))),\n}},\n\
                 serde::__private::Content::Map(__entries) if __entries.len() == 1 => {{\n\
                 let (__k, __v) = __entries.into_iter().next().unwrap();\n\
                 match __k.as_str() {{\n{map_arms}\
                 __other => Err({DE_ERR}(format!(\"unknown variant `{{__other}}`\"))),\n}}\n}}\n\
                 __other => Err({DE_ERR}(format!(\"invalid type: expected enum, \
                 found {{}}\", __other.kind()))),\n}}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl<'de> serde::de::Deserialize<'de> for {name} {{\n\
             fn deserialize<D: serde::de::Deserializer<'de>>(deserializer: D) \
                 -> Result<Self, D::Error> {{\n\
                 let __content = serde::de::Deserializer::deserialize_content(deserializer)?;\n\
                 {body}\n}}\n\
         }}"
    )
}

/// Derives `serde::Serialize` through the vendored [`Content`] model.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive stub generated invalid Serialize impl")
}

/// Derives `serde::Deserialize` through the vendored [`Content`] model.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive stub generated invalid Deserialize impl")
}
