//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API used by this workspace's
//! property tests: the [`proptest!`] macro with an optional
//! `#![proptest_config(...)]` header, `prop_assert!`/`prop_assert_eq!`/
//! `prop_assume!`, range/`any`/tuple/collection/string-regex strategies and
//! `prop_map`. Failing cases report the generated inputs; shrinking is not
//! implemented (failures print the original inputs instead of a minimised
//! counterexample).
//!
//! Case generation is deterministic per test function (seeded from the test
//! path), overridable with the `PROPTEST_SEED` environment variable;
//! `PROPTEST_CASES` overrides the case count.

#![forbid(unsafe_code)]

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;
use std::collections::BTreeSet;
use std::fmt::Debug;
use std::ops::Range;

pub mod collection;
pub mod string;

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` filtered the case out; it does not count.
    Reject(String),
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Builds a rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// The case count after applying the `PROPTEST_CASES` env override.
    pub fn resolved_cases(&self) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(self.cases)
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The RNG driving generation for one test function.
pub type TestRng = ChaCha12Rng;

/// Builds the deterministic RNG for a test, keyed by its module path unless
/// `PROPTEST_SEED` overrides it.
pub fn test_rng(test_path: &str) -> TestRng {
    if let Ok(seed) = std::env::var("PROPTEST_SEED") {
        if let Ok(seed) = seed.parse::<u64>() {
            return ChaCha12Rng::seed_from_u64(seed);
        }
    }
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for b in test_path.bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    ChaCha12Rng::seed_from_u64(hash)
}

/// A source of generated values.
///
/// Unlike real proptest there is no shrinking: `generate` produces the final
/// value directly.
pub trait Strategy {
    /// The generated value type.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }
}

/// The [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.source.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

/// Types with a canonical "whole domain" strategy ([`any`]).
pub trait Arbitrary: Sized + Debug {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> i64 {
        rng.gen::<u64>() as i64
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.gen::<bool>()
    }
}

/// The [`any`] strategy.
#[derive(Debug)]
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy over `T`'s full domain.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A 0);
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
}

/// String strategies from a regex-like pattern (`"[a-z][a-z0-9]{2,20}"`).
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        string::generate_from_pattern(self, rng)
    }
}

/// Size specification for collection strategies.
#[derive(Debug, Clone)]
pub struct SizeRange {
    /// Inclusive lower bound.
    pub min: usize,
    /// Exclusive upper bound.
    pub max: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            min: r.start,
            max: r.end,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n + 1 }
    }
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        rng.gen_range(self.min..self.max)
    }
}

/// `prop::collection::vec` strategy type.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// `prop::collection::btree_set` strategy type.
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let target = self.size.pick(rng);
        let mut out = BTreeSet::new();
        // The element domain may be smaller than the target size; bound the
        // attempts and accept whatever unique values were found (never below
        // one element when min > 0, because the first insert always succeeds).
        let mut attempts = 0;
        while out.len() < target && attempts < target * 16 + 32 {
            out.insert(self.element.generate(rng));
            attempts += 1;
        }
        out
    }
}

pub(crate) fn vec_strategy<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

pub(crate) fn btree_set_strategy<S: Strategy>(
    element: S,
    size: impl Into<SizeRange>,
) -> BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__left, __right) = (&$left, &$right);
        if !(*__left == *__right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
                __left, __right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__left, __right) = (&$left, &$right);
        if !(*__left == *__right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Discards the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Declares property tests. Mirrors proptest's surface:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0u64..100, flag in any::<bool>()) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr;
     $($(#[$meta:meta])*
       fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let __cases = __config.resolved_cases();
                let mut __rng =
                    $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
                let mut __passed = 0u32;
                let mut __rejected = 0u32;
                while __passed < __cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    let mut __inputs = String::new();
                    $(
                        __inputs.push_str(stringify!($arg));
                        __inputs.push_str(" = ");
                        __inputs.push_str(&format!("{:?}; ", &$arg));
                    )+
                    let __result: ::std::result::Result<(), $crate::TestCaseError> =
                        (move || {
                            $body
                            #[allow(unreachable_code)]
                            ::std::result::Result::Ok(())
                        })();
                    match __result {
                        ::std::result::Result::Ok(()) => {
                            __passed += 1;
                        }
                        ::std::result::Result::Err($crate::TestCaseError::Reject(__why)) => {
                            __rejected += 1;
                            if __rejected > __cases.saturating_mul(16) + 256 {
                                panic!(
                                    "proptest: too many prop_assume rejections ({})",
                                    __why
                                );
                            }
                        }
                        ::std::result::Result::Err($crate::TestCaseError::Fail(__msg)) => {
                            panic!(
                                "proptest case #{} failed: {}\n  inputs: {}",
                                __passed + 1,
                                __msg,
                                __inputs
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::{any, Arbitrary, Just, ProptestConfig, Strategy, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};

    /// The `prop::` namespace (`prop::collection::vec`, ...).
    pub mod prop {
        pub use crate::collection;
    }
}
