//! Collection strategies (`prop::collection`).

use crate::{BTreeSetStrategy, SizeRange, Strategy, VecStrategy};

/// Generates `Vec`s with a size drawn from `size` and elements from
/// `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    crate::vec_strategy(element, size)
}

/// Generates `BTreeSet`s. If the element domain is too small to reach the
/// drawn size, the set saturates at the number of distinct values found.
pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    crate::btree_set_strategy(element, size)
}
