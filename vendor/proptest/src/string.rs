//! String generation from a small regex-like pattern language.
//!
//! Supports the constructs the workspace's tests use: literal characters,
//! character classes `[a-z0-9_]`, and the quantifiers `{m}`, `{m,n}`, `?`,
//! `+`, `*` (the unbounded ones are capped at 8 repetitions). Anything more
//! exotic panics with a clear message rather than silently misgenerating.

use crate::TestRng;
use rand::Rng;

enum Atom {
    Literal(char),
    Class(Vec<char>),
}

struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Vec<char> {
    let mut set = Vec::new();
    let mut prev: Option<char> = None;
    loop {
        let c = chars
            .next()
            .unwrap_or_else(|| panic!("proptest stub: unterminated character class"));
        match c {
            ']' => break,
            '-' if prev.is_some() && chars.peek().is_some_and(|&n| n != ']') => {
                let start = prev.take().unwrap();
                let end = chars.next().unwrap();
                assert!(
                    start <= end,
                    "proptest stub: inverted class range {start}-{end}"
                );
                // `start` is already in the set; add the rest of the range.
                let mut ch = start as u32 + 1;
                while ch <= end as u32 {
                    set.push(char::from_u32(ch).unwrap());
                    ch += 1;
                }
            }
            c => {
                set.push(c);
                prev = Some(c);
            }
        }
    }
    assert!(!set.is_empty(), "proptest stub: empty character class");
    set
}

fn parse_quantifier(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> (usize, usize) {
    const UNBOUNDED_CAP: usize = 8;
    match chars.peek() {
        Some('?') => {
            chars.next();
            (0, 1)
        }
        Some('*') => {
            chars.next();
            (0, UNBOUNDED_CAP)
        }
        Some('+') => {
            chars.next();
            (1, UNBOUNDED_CAP)
        }
        Some('{') => {
            chars.next();
            let mut spec = String::new();
            for c in chars.by_ref() {
                if c == '}' {
                    break;
                }
                spec.push(c);
            }
            let parts: Vec<&str> = spec.split(',').collect();
            match parts.as_slice() {
                [n] => {
                    let n = n.trim().parse().expect("proptest stub: bad {n} quantifier");
                    (n, n)
                }
                [m, n] => (
                    m.trim()
                        .parse()
                        .expect("proptest stub: bad {m,n} quantifier"),
                    n.trim()
                        .parse()
                        .expect("proptest stub: bad {m,n} quantifier"),
                ),
                _ => panic!("proptest stub: malformed quantifier {{{spec}}}"),
            }
        }
        _ => (1, 1),
    }
}

fn parse_pattern(pattern: &str) -> Vec<Piece> {
    let mut chars = pattern.chars().peekable();
    let mut pieces = Vec::new();
    while let Some(c) = chars.next() {
        let atom = match c {
            '[' => Atom::Class(parse_class(&mut chars)),
            '\\' => Atom::Literal(
                chars
                    .next()
                    .unwrap_or_else(|| panic!("proptest stub: dangling escape")),
            ),
            '(' | ')' | '|' | '^' | '$' | '.' => {
                panic!("proptest stub: unsupported regex construct `{c}` in {pattern:?}")
            }
            c => Atom::Literal(c),
        };
        let (min, max) = parse_quantifier(&mut chars);
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

/// Generates one string matching `pattern`.
pub fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    for piece in parse_pattern(pattern) {
        let count = rng.gen_range(piece.min..=piece.max);
        for _ in 0..count {
            match &piece.atom {
                Atom::Literal(c) => out.push(*c),
                Atom::Class(set) => {
                    out.push(set[rng.gen_range(0..set.len())]);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn domain_label_pattern() {
        let mut rng = TestRng::seed_from_u64(1);
        for _ in 0..200 {
            let s = generate_from_pattern("[a-z][a-z0-9]{2,20}", &mut rng);
            assert!(s.len() >= 3 && s.len() <= 21, "len was {}", s.len());
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
        }
    }

    #[test]
    fn literals_and_quantifiers() {
        let mut rng = TestRng::seed_from_u64(2);
        assert_eq!(generate_from_pattern("abc", &mut rng), "abc");
        let s = generate_from_pattern("a{3}b?", &mut rng);
        assert!(s.starts_with("aaa"));
    }
}
